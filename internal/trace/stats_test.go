package trace

import (
	"math"
	"testing"
	"time"

	"cablevod/internal/units"
)

func TestSummarize(t *testing.T) {
	tr := mkTrace(
		rec(1, 1, 0, 10),
		rec(2, 1, 60, 20),
		rec(1, 2, 120, 30),
	)
	s := tr.Summarize()
	if s.Records != 3 || s.Users != 2 || s.Programs != 2 {
		t.Errorf("counts = %+v", s)
	}
	if s.Span != 150*time.Minute {
		t.Errorf("span = %v, want 150m", s.Span)
	}
	if s.MeanSessionLength != 20*time.Minute {
		t.Errorf("mean = %v, want 20m", s.MeanSessionLength)
	}
	if s.MedianSessionLength != 20*time.Minute {
		t.Errorf("median = %v, want 20m", s.MedianSessionLength)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := New().Summarize()
	if s.Records != 0 || s.MeanSessionLength != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSessionLengthECDF(t *testing.T) {
	tr := mkTrace(
		rec(1, 1, 0, 5),
		rec(2, 1, 0, 10),
		rec(3, 1, 0, 10),
		rec(4, 1, 0, 60),
		rec(5, 2, 0, 99),
	)
	lengths, probs := tr.SessionLengthECDF(1)
	if len(lengths) != 4 {
		t.Fatalf("got %d points, want 4", len(lengths))
	}
	if lengths[0] != 5*time.Minute || lengths[3] != 60*time.Minute {
		t.Errorf("lengths = %v", lengths)
	}
	if probs[3] != 1 {
		t.Errorf("final prob = %v, want 1", probs[3])
	}
	if math.Abs(probs[0]-0.25) > 1e-12 {
		t.Errorf("first prob = %v, want 0.25", probs[0])
	}
	if l, p := tr.SessionLengthECDF(42); l != nil || p != nil {
		t.Error("expected nil ECDF for unknown program")
	}
}

func TestMostPopular(t *testing.T) {
	tr := mkTrace(
		rec(1, 5, 0, 1), rec(2, 5, 1, 1), rec(3, 5, 2, 1),
		rec(1, 7, 3, 1), rec(2, 7, 4, 1),
		rec(1, 9, 5, 1),
	)
	got := tr.MostPopular(2)
	if len(got) != 2 || got[0] != 5 || got[1] != 7 {
		t.Errorf("MostPopular(2) = %v, want [5 7]", got)
	}
	all := tr.MostPopular(10)
	if len(all) != 3 {
		t.Errorf("MostPopular(10) returned %d programs, want 3", len(all))
	}
}

func TestInitiationCounts(t *testing.T) {
	tr := mkTrace(
		rec(1, 1, 0, 5),
		rec(2, 1, 10, 5),
		rec(3, 1, 16, 5),
		rec(4, 2, 31, 5),
	)
	counts := tr.InitiationCounts(0, 45*time.Minute, 15*time.Minute)
	s1 := counts[1]
	if len(s1.Buckets) != 3 {
		t.Fatalf("program 1 has %d buckets, want 3", len(s1.Buckets))
	}
	if s1.Buckets[0] != 2 || s1.Buckets[1] != 1 || s1.Buckets[2] != 0 {
		t.Errorf("program 1 buckets = %v, want [2 1 0]", s1.Buckets)
	}
	if counts[2].Buckets[2] != 1 {
		t.Errorf("program 2 buckets = %v", counts[2].Buckets)
	}
	if s1.Max() != 2 {
		t.Errorf("Max() = %d, want 2", s1.Max())
	}
}

func TestInitiationCountsDegenerate(t *testing.T) {
	tr := mkTrace(rec(1, 1, 0, 5))
	if got := tr.InitiationCounts(0, 0, time.Minute); got != nil {
		t.Error("expected nil for empty window")
	}
	if got := tr.InitiationCounts(0, time.Hour, 0); got != nil {
		t.Error("expected nil for zero bucket")
	}
}

func TestPopularityQuantiles(t *testing.T) {
	tr := New()
	// Program 1: 10 sessions in one bucket; program 2: 5; programs 3-12: 1.
	for i := 0; i < 10; i++ {
		tr.Append(rec(UserID(i), 1, i, 2))
	}
	for i := 0; i < 5; i++ {
		tr.Append(rec(UserID(20+i), 2, i, 2))
	}
	for p := 3; p <= 12; p++ {
		tr.Append(rec(UserID(30+p), ProgramID(p), p, 2))
	}
	tr.Sort()
	series := tr.PopularityQuantiles(0, 15*time.Minute, 15*time.Minute, []float64{0.95})
	if len(series) != 2 {
		t.Fatalf("got %d series, want 2", len(series))
	}
	if series[0].Max() != 10 {
		t.Errorf("max series peak = %d, want 10", series[0].Max())
	}
	if series[1].Max() > series[0].Max() {
		t.Error("quantile series exceeds maximum series")
	}
}

func TestHourlyRateSingleSession(t *testing.T) {
	// One 1-hour session at hour 19 on each of 2 days, trace spans 2 days.
	tr := New()
	tr.Append(Record{User: 1, Program: 1, Start: units.At(0, 19), Duration: time.Hour})
	tr.Append(Record{User: 1, Program: 1, Start: units.At(1, 19), Duration: time.Hour})
	// Anchor the span to exactly 2 days with a tiny session at the end.
	tr.Append(Record{User: 2, Program: 1, Start: 2*units.Day - time.Second, Duration: time.Second})
	tr.Sort()
	rates := tr.HourlyRate()
	// Hour 19 carries one full stream per day on average.
	got := rates[19]
	if math.Abs(got.Mbps()-units.StreamRate.Mbps()) > 0.1 {
		t.Errorf("hour 19 rate = %v, want ~%v", got, units.StreamRate)
	}
	if rates[12] != 0 {
		t.Errorf("hour 12 rate = %v, want 0", rates[12])
	}
}

func TestHourlyRateSpansHourBoundary(t *testing.T) {
	tr := New()
	tr.Append(Record{User: 1, Program: 1, Start: units.At(0, 19) + 30*time.Minute, Duration: time.Hour})
	tr.Sort()
	rates := tr.HourlyRate()
	if rates[19] == 0 || rates[20] == 0 {
		t.Errorf("session spanning 19:30-20:30 should hit hours 19 and 20: %v %v", rates[19], rates[20])
	}
	if rates[19] != rates[20] {
		t.Errorf("equal halves expected: %v vs %v", rates[19], rates[20])
	}
}

func TestConcurrencyByDay(t *testing.T) {
	tr := New()
	// 12 hours of viewing on day 0 => 0.5 average concurrency.
	tr.Append(Record{User: 1, Program: 1, Start: 0, Duration: 12 * time.Hour})
	// Crosses midnight: 6 hours on day 1, 6 on day 2.
	tr.Append(Record{User: 2, Program: 1, Start: units.At(1, 18), Duration: 12 * time.Hour})
	tr.Sort()
	got := tr.ConcurrencyByDay(1, 3)
	want := []float64{0.5, 0.25, 0.25}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("day %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFirstAccess(t *testing.T) {
	tr := mkTrace(rec(1, 1, 50, 1), rec(2, 1, 10, 1), rec(3, 2, 30, 1))
	fa := tr.FirstAccess()
	if fa[1] != 10*time.Minute {
		t.Errorf("first access of program 1 = %v, want 10m", fa[1])
	}
	if fa[2] != 30*time.Minute {
		t.Errorf("first access of program 2 = %v, want 30m", fa[2])
	}
}
