package trace

import (
	"sort"
	"time"

	"cablevod/internal/units"
)

// Summary holds headline statistics of a trace, mirroring the figures the
// paper reports for the PowerInfo data set (Section V-A).
type Summary struct {
	Records             int
	Users               int
	Programs            int
	Span                time.Duration
	SessionsPerUserDay  float64
	MeanSessionLength   time.Duration
	MedianSessionLength time.Duration
}

// Summarize computes a Summary.
func (t *Trace) Summarize() Summary {
	s := Summary{
		Records:  len(t.Records),
		Users:    len(t.Users()),
		Programs: len(t.Programs()),
	}
	start, end := t.Span()
	s.Span = end - start
	if len(t.Records) == 0 {
		return s
	}
	var total time.Duration
	lengths := make([]time.Duration, len(t.Records))
	for i, r := range t.Records {
		total += r.Duration
		lengths[i] = r.Duration
	}
	sort.Slice(lengths, func(i, j int) bool { return lengths[i] < lengths[j] })
	s.MeanSessionLength = total / time.Duration(len(t.Records))
	s.MedianSessionLength = lengths[len(lengths)/2]
	days := s.Span.Hours() / 24
	if days > 0 && s.Users > 0 {
		s.SessionsPerUserDay = float64(s.Records) / days / float64(s.Users)
	}
	return s
}

// SessionLengthECDF returns the empirical CDF of session lengths for one
// program as sorted (length, cumulative probability) pairs — the data
// behind Figures 3 and 6.
func (t *Trace) SessionLengthECDF(p ProgramID) (lengths []time.Duration, probs []float64) {
	recs := t.FilterProgram(p)
	if len(recs) == 0 {
		return nil, nil
	}
	lengths = make([]time.Duration, len(recs))
	for i, r := range recs {
		lengths[i] = r.Duration
	}
	sort.Slice(lengths, func(i, j int) bool { return lengths[i] < lengths[j] })
	probs = make([]float64, len(lengths))
	for i := range lengths {
		probs[i] = float64(i+1) / float64(len(lengths))
	}
	return lengths, probs
}

// MostPopular returns the n most-accessed programs, most popular first.
// Ties break toward the smaller program ID.
func (t *Trace) MostPopular(n int) []ProgramID {
	counts := make(map[ProgramID]int)
	for _, r := range t.Records {
		counts[r.Program]++
	}
	progs := make([]ProgramID, 0, len(counts))
	for p := range counts {
		progs = append(progs, p)
	}
	sort.Slice(progs, func(i, j int) bool {
		if counts[progs[i]] != counts[progs[j]] {
			return counts[progs[i]] > counts[progs[j]]
		}
		return progs[i] < progs[j]
	})
	if n > len(progs) {
		n = len(progs)
	}
	return progs[:n]
}

// InitiationSeries is the Figure-2 data: for each 15-minute bucket of a
// window, the number of sessions initiated for a given program rank.
type InitiationSeries struct {
	BucketWidth time.Duration
	From, To    time.Duration
	// Buckets[i] is the count for bucket starting at From + i*BucketWidth.
	Buckets []int
}

// Max returns the largest bucket count.
func (s InitiationSeries) Max() int {
	m := 0
	for _, v := range s.Buckets {
		if v > m {
			m = v
		}
	}
	return m
}

// InitiationCounts computes, for every program, its session-initiation
// series over [from, to) with the given bucket width.
func (t *Trace) InitiationCounts(from, to, bucket time.Duration) map[ProgramID]InitiationSeries {
	if bucket <= 0 || to <= from {
		return nil
	}
	n := int((to - from + bucket - 1) / bucket)
	out := make(map[ProgramID]InitiationSeries)
	for _, r := range t.Records {
		if r.Start < from || r.Start >= to {
			continue
		}
		s, ok := out[r.Program]
		if !ok {
			s = InitiationSeries{BucketWidth: bucket, From: from, To: to, Buckets: make([]int, n)}
		}
		s.Buckets[int((r.Start-from)/bucket)]++
		out[r.Program] = s
	}
	return out
}

// PopularityQuantiles ranks programs by their peak 15-minute initiation
// count over the window and returns the series for the maximum program and
// the programs at the given quantiles (e.g. 0.99, 0.95) — Figure 2's three
// curves. Quantiles are over the set of programs active in the window.
func (t *Trace) PopularityQuantiles(from, to, bucket time.Duration, quantiles []float64) []InitiationSeries {
	counts := t.InitiationCounts(from, to, bucket)
	if len(counts) == 0 {
		return nil
	}
	progs := make([]ProgramID, 0, len(counts))
	for p := range counts {
		progs = append(progs, p)
	}
	// Rank descending by peak bucket count; ties to smaller ID.
	sort.Slice(progs, func(i, j int) bool {
		mi, mj := counts[progs[i]].Max(), counts[progs[j]].Max()
		if mi != mj {
			return mi > mj
		}
		return progs[i] < progs[j]
	})
	out := make([]InitiationSeries, 0, 1+len(quantiles))
	out = append(out, counts[progs[0]])
	for _, q := range quantiles {
		// Quantile q of popularity: the program ranked at position
		// (1-q) * N from the top.
		idx := int((1 - q) * float64(len(progs)))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(progs) {
			idx = len(progs) - 1
		}
		out = append(out, counts[progs[idx]])
	}
	return out
}

// HourlyRate returns, for each hour of the day (0-23), the average data
// rate the whole subscriber population pulls when every session streams at
// units.StreamRate — Figure 7's series (and the uncached server load).
func (t *Trace) HourlyRate() [24]units.BitRate {
	start, end := t.Span()
	var byHour [24]units.BitRate
	if end <= start {
		return byHour
	}
	// Accumulate exact bits viewed per hour-of-day bucket, then divide by
	// the number of calendar days the trace touches.
	var bits [24]int64
	for _, r := range t.Records {
		addSessionBits(&bits, r.Start, r.End())
	}
	// Count days by session starts: trailing spillover past the last
	// day's midnight must not dilute the per-day averages.
	lastStart := t.Records[0].Start
	for _, r := range t.Records {
		if r.Start > lastStart {
			lastStart = r.Start
		}
	}
	days := float64(units.DayIndex(lastStart) - units.DayIndex(start) + 1)
	if days < 1 {
		days = 1
	}
	for h := 0; h < 24; h++ {
		// bits accumulated in this hour bucket over the whole trace,
		// averaged per day then per second of the hour.
		perDay := float64(bits[h]) / days
		byHour[h] = units.BitRate(perDay / 3600)
	}
	return byHour
}

// addSessionBits spreads a session's bits across hour-of-day buckets.
func addSessionBits(bits *[24]int64, from, to time.Duration) {
	for from < to {
		hourEnd := from.Truncate(time.Hour) + time.Hour
		if hourEnd > to {
			hourEnd = to
		}
		h := units.HourOfDay(from)
		bits[h] += int64(units.StreamRate.BytesIn(hourEnd-from)) * 8
		from = hourEnd
	}
}

// ConcurrencyByDay returns, for each day in [0, days), the average number
// of concurrent sessions for program p during that day — the Figure-12
// series when aligned to the program's introduction.
func (t *Trace) ConcurrencyByDay(p ProgramID, days int) []float64 {
	out := make([]float64, days)
	for _, r := range t.FilterProgram(p) {
		from, to := r.Start, r.End()
		for from < to {
			dayEnd := (time.Duration(units.DayIndex(from)) + 1) * units.Day
			if dayEnd > to {
				dayEnd = to
			}
			d := units.DayIndex(from)
			if d >= 0 && d < days {
				out[d] += (dayEnd - from).Seconds()
			}
			from = dayEnd
		}
	}
	for i := range out {
		out[i] /= units.Day.Seconds()
	}
	return out
}

// FirstAccess returns the time of the first session for each program.
func (t *Trace) FirstAccess() map[ProgramID]time.Duration {
	out := make(map[ProgramID]time.Duration, len(t.ProgramLengths))
	for _, r := range t.Records {
		if cur, ok := out[r.Program]; !ok || r.Start < cur {
			out[r.Program] = r.Start
		}
	}
	return out
}
