package trace

import (
	"testing"
	"time"

	"cablevod/internal/randdist"
)

func TestInferProgramLengthsDetectsJump(t *testing.T) {
	tr := New()
	rng := randdist.NewRNG(1, 1)
	const progLen = 100 * time.Minute
	// 70 short sessions with attrition, 30 completions.
	for i := 0; i < 70; i++ {
		d := time.Duration(1+rng.IntN(40)) * time.Minute
		tr.Append(Record{User: UserID(i), Program: 1, Start: time.Duration(i) * time.Minute, Duration: d})
	}
	for i := 70; i < 100; i++ {
		tr.Append(Record{User: UserID(i), Program: 1, Start: time.Duration(i) * time.Minute, Duration: progLen})
	}
	tr.Sort()
	detected := tr.InferProgramLengths(DefaultInferOptions())
	if detected != 1 {
		t.Fatalf("detected %d jumps, want 1", detected)
	}
	if got := tr.ProgramLengths[1]; got != progLen {
		t.Errorf("inferred length = %v, want %v", got, progLen)
	}
}

func TestInferProgramLengthsFallbackFewSessions(t *testing.T) {
	tr := mkTrace(
		rec(1, 1, 0, 30),
		rec(2, 1, 10, 55),
	)
	detected := tr.InferProgramLengths(DefaultInferOptions())
	if detected != 0 {
		t.Errorf("detected %d jumps from 2 sessions, want 0", detected)
	}
	if got := tr.ProgramLengths[1]; got != 55*time.Minute {
		t.Errorf("fallback length = %v, want longest session 55m", got)
	}
}

func TestInferProgramLengthsNoJump(t *testing.T) {
	tr := New()
	// 100 sessions with distinct second-level lengths: no granule clears
	// the jump threshold once rounded to the minute... ensure spread.
	for i := 0; i < 100; i++ {
		tr.Append(Record{
			User:     UserID(i),
			Program:  1,
			Start:    time.Duration(i) * time.Minute,
			Duration: time.Duration(i+1) * 3 * time.Minute,
		})
	}
	tr.Sort()
	detected := tr.InferProgramLengths(DefaultInferOptions())
	if detected != 0 {
		t.Errorf("detected %d jumps in uniform spread, want 0", detected)
	}
	if got := tr.ProgramLengths[1]; got != 300*time.Minute {
		t.Errorf("fallback = %v, want 300m", got)
	}
}

func TestInferIgnoresEarlySpike(t *testing.T) {
	tr := New()
	// Heavy mass at 1 minute (quick abandons) plus a completion mass at 80m.
	for i := 0; i < 60; i++ {
		tr.Append(Record{User: UserID(i), Program: 1, Start: time.Duration(i) * time.Minute, Duration: time.Minute})
	}
	for i := 60; i < 75; i++ {
		tr.Append(Record{User: UserID(i), Program: 1, Start: time.Duration(i) * time.Minute, Duration: 80 * time.Minute})
	}
	tr.Sort()
	tr.InferProgramLengths(DefaultInferOptions())
	if got := tr.ProgramLengths[1]; got != 80*time.Minute {
		t.Errorf("inferred = %v, want 80m (the last spike, not the abandon spike)", got)
	}
}

func TestInferHandlesZeroGranularity(t *testing.T) {
	tr := mkTrace(rec(1, 1, 0, 10))
	opts := DefaultInferOptions()
	opts.Granularity = 0
	tr.InferProgramLengths(opts) // must not panic
	if tr.ProgramLengths[1] != 10*time.Minute {
		t.Errorf("length = %v, want 10m", tr.ProgramLengths[1])
	}
}
