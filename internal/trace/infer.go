package trace

import (
	"sort"
	"time"
)

// Program-length inference (Section V-A): the PowerInfo trace does not
// record program lengths, but a significant fraction of users watch a
// program to completion, which shows up as a pronounced jump in the
// per-program ECDF of session lengths at the program's true length
// (Figure 6). The paper extrapolated lengths by inspecting these ECDFs;
// InferProgramLengths automates the same inspection.

// InferOptions tunes the ECDF-jump detector.
type InferOptions struct {
	// MinSessions is the minimum number of sessions needed to attempt
	// inference; below it the longest observed session is used.
	MinSessions int

	// MinJump is the minimum ECDF probability mass concentrated at a
	// single length value for it to count as the completion jump.
	MinJump float64

	// Granularity rounds candidate lengths; sessions within one
	// granule are treated as the same length (completion sessions all
	// report essentially the full length).
	Granularity time.Duration
}

// DefaultInferOptions matches the visual-inspection procedure described in
// the paper: a clearly visible jump in an ECDF corresponds to at least a
// few percent of mass at one value.
func DefaultInferOptions() InferOptions {
	return InferOptions{
		MinSessions: 20,
		MinJump:     0.04,
		Granularity: time.Minute,
	}
}

// InferProgramLengths fills t.ProgramLengths for every program, detecting
// the completion jump in each program's session-length ECDF. Programs
// without a detectable jump fall back to the longest observed session.
// It returns the number of programs whose length came from a detected jump.
func (t *Trace) InferProgramLengths(opts InferOptions) int {
	if opts.Granularity <= 0 {
		opts.Granularity = time.Minute
	}
	byProgram := make(map[ProgramID][]time.Duration)
	for _, r := range t.Records {
		byProgram[r.Program] = append(byProgram[r.Program], r.Duration)
	}
	detected := 0
	for p, lengths := range byProgram {
		l, ok := inferOne(lengths, opts)
		if ok {
			detected++
		}
		t.ProgramLengths[p] = l
	}
	return detected
}

// inferOne returns the inferred full length for one program's sessions and
// whether a completion jump was detected.
func inferOne(lengths []time.Duration, opts InferOptions) (time.Duration, bool) {
	if len(lengths) == 0 {
		return 0, false
	}
	longest := lengths[0]
	for _, l := range lengths {
		if l > longest {
			longest = l
		}
	}
	if len(lengths) < opts.MinSessions {
		return longest, false
	}

	// Bucket session lengths to the granularity and find the granule, at
	// or beyond the median, holding the largest probability mass. A
	// completion jump is a granule with at least MinJump of all mass.
	counts := make(map[time.Duration]int)
	for _, l := range lengths {
		counts[l.Round(opts.Granularity)]++
	}
	granules := make([]time.Duration, 0, len(counts))
	for g := range counts {
		granules = append(granules, g)
	}
	sort.Slice(granules, func(i, j int) bool { return granules[i] < granules[j] })

	total := len(lengths)
	var best time.Duration
	bestCount := 0
	// The completion jump is the *last* big spike: scan from the longest
	// granule down, accepting the first granule that clears MinJump.
	// (Short-attention mass dominates the low end, Figure 3.)
	for i := len(granules) - 1; i >= 0; i-- {
		g := granules[i]
		c := counts[g]
		if float64(c)/float64(total) >= opts.MinJump {
			best = g
			bestCount = c
			break
		}
	}
	if bestCount == 0 {
		return longest, false
	}
	return best, true
}
