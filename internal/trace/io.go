package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// CSV layout: header then one row per record. Times are integer seconds
// from the trace epoch, matching how the PowerInfo records are described
// (user, program, session length). The offset column records where inside
// the program playback started; readers also accept the legacy 4-column
// layout without it.
const (
	csvHeaderLine       = "user,program,start_sec,duration_sec,offset_sec"
	csvHeaderLineLegacy = "user,program,start_sec,duration_sec"
)

// WriteCSV writes the trace in the canonical CSV layout. Program lengths
// are not part of the CSV format; persist them with the gob format or
// re-infer them with InferProgramLengths.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"user", "program", "start_sec", "duration_sec", "offset_sec"}); err != nil {
		return fmt.Errorf("trace: write csv header: %w", err)
	}
	row := make([]string, 5)
	for i, r := range t.Records {
		row[0] = strconv.FormatInt(int64(r.User), 10)
		row[1] = strconv.FormatInt(int64(r.Program), 10)
		row[2] = strconv.FormatInt(int64(r.Start/time.Second), 10)
		row[3] = strconv.FormatInt(int64(r.Duration/time.Second), 10)
		row[4] = strconv.FormatInt(int64(r.Offset/time.Second), 10)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write csv record %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: flush csv: %w", err)
	}
	return nil
}

// ReadCSV parses a trace in the canonical CSV layout (current or legacy
// 4-column form).
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true

	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read csv header: %w", err)
	}
	got := strings.Join(header, ",")
	if got != csvHeaderLine && got != csvHeaderLineLegacy {
		return nil, fmt.Errorf("trace: unexpected csv header %q, want %q", got, csvHeaderLine)
	}
	cr.FieldsPerRecord = len(header)

	t := New()
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: read csv line %d: %w", line, err)
		}
		rec, err := parseCSVRow(row)
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: %w", line, err)
		}
		t.Append(rec)
	}
	t.Sort()
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func parseCSVRow(row []string) (Record, error) {
	user, err := strconv.ParseInt(row[0], 10, 32)
	if err != nil {
		return Record{}, fmt.Errorf("user: %w", err)
	}
	prog, err := strconv.ParseInt(row[1], 10, 32)
	if err != nil {
		return Record{}, fmt.Errorf("program: %w", err)
	}
	start, err := strconv.ParseInt(row[2], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("start: %w", err)
	}
	dur, err := strconv.ParseInt(row[3], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("duration: %w", err)
	}
	var offset int64
	if len(row) > 4 {
		offset, err = strconv.ParseInt(row[4], 10, 64)
		if err != nil {
			return Record{}, fmt.Errorf("offset: %w", err)
		}
	}
	rec := Record{
		User:     UserID(user),
		Program:  ProgramID(prog),
		Start:    time.Duration(start) * time.Second,
		Duration: time.Duration(dur) * time.Second,
		Offset:   time.Duration(offset) * time.Second,
	}
	if err := rec.Validate(); err != nil {
		return Record{}, err
	}
	return rec, nil
}

// gobTrace is the wire form for the gob format; it exists so the exported
// Trace type can evolve without breaking stored files.
type gobTrace struct {
	Records        []Record
	ProgramLengths map[ProgramID]time.Duration
}

// WriteGob writes the full trace, including program lengths, in gob form.
func (t *Trace) WriteGob(w io.Writer) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(gobTrace{Records: t.Records, ProgramLengths: t.ProgramLengths}); err != nil {
		return fmt.Errorf("trace: encode gob: %w", err)
	}
	return nil
}

// ReadGob reads a gob-form trace.
func ReadGob(r io.Reader) (*Trace, error) {
	var gt gobTrace
	if err := gob.NewDecoder(r).Decode(&gt); err != nil {
		return nil, fmt.Errorf("trace: decode gob: %w", err)
	}
	t := &Trace{Records: gt.Records, ProgramLengths: gt.ProgramLengths}
	if t.ProgramLengths == nil {
		t.ProgramLengths = make(map[ProgramID]time.Duration)
	}
	t.Sort()
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// SaveFile writes the trace to path; format is chosen by extension
// (".csv" or ".gob").
func (t *Trace) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("trace: close %s: %w", path, cerr)
		}
	}()
	bw := bufio.NewWriter(f)
	if hasSuffix(path, ".csv") {
		err = t.WriteCSV(bw)
	} else {
		err = t.WriteGob(bw)
	}
	if err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flush %s: %w", path, err)
	}
	return nil
}

// LoadFile reads a trace from path; format is chosen by extension.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: open %s: %w", path, err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	if hasSuffix(path, ".csv") {
		return ReadCSV(br)
	}
	return ReadGob(br)
}

func hasSuffix(s, suffix string) bool {
	return len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix
}
