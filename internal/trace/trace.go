// Package trace defines the session-record model for VoD workload traces
// (the shape of the PowerInfo trace the paper evaluates on), together with
// container operations, CSV/gob serialization, summary statistics,
// program-length inference, and the user/catalog scaling transforms of
// Section V-A.
package trace

import (
	"fmt"
	"sort"
	"time"
)

// UserID identifies a subscriber.
type UserID int32

// ProgramID identifies a program in the catalog.
type ProgramID int32

// Record is one VoD session: a user watched a program starting at Start
// (offset from the trace epoch) for Duration. This mirrors the PowerInfo
// record fields the paper uses (user, program, session length). Offset is
// the position inside the program where playback began: 0 for normal
// sessions, a later point for the fast-forward "jump to predetermined
// points" mechanism the paper proposes (Section IV-B.1).
type Record struct {
	User     UserID
	Program  ProgramID
	Start    time.Duration
	Duration time.Duration
	Offset   time.Duration
}

// End returns the session end time.
func (r Record) End() time.Duration { return r.Start + r.Duration }

// Validate checks a record for structural sanity.
func (r Record) Validate() error {
	switch {
	case r.User < 0:
		return fmt.Errorf("trace: negative user id %d", r.User)
	case r.Program < 0:
		return fmt.Errorf("trace: negative program id %d", r.Program)
	case r.Start < 0:
		return fmt.Errorf("trace: negative start %v", r.Start)
	case r.Duration <= 0:
		return fmt.Errorf("trace: non-positive duration %v", r.Duration)
	case r.Offset < 0:
		return fmt.Errorf("trace: negative offset %v", r.Offset)
	default:
		return nil
	}
}

// Trace is an ordered collection of session records plus catalog metadata.
// Records are kept sorted by (Start, User, Program).
type Trace struct {
	// Records holds the sessions sorted by start time.
	Records []Record

	// ProgramLengths maps each program to its full playback length.
	// It may be empty for raw traces; InferProgramLengths fills it.
	ProgramLengths map[ProgramID]time.Duration
}

// New returns an empty trace.
func New() *Trace {
	return &Trace{ProgramLengths: make(map[ProgramID]time.Duration)}
}

// Append adds a record (without re-sorting; call Sort when done).
func (t *Trace) Append(r Record) {
	t.Records = append(t.Records, r)
}

// Sort orders records by (Start, User, Program) so playback and scaling are
// deterministic.
func (t *Trace) Sort() {
	sort.Slice(t.Records, func(i, j int) bool {
		a, b := t.Records[i], t.Records[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.User != b.User {
			return a.User < b.User
		}
		return a.Program < b.Program
	})
}

// Sorted reports whether records are in (Start, User, Program) order.
func (t *Trace) Sorted() bool {
	return sort.SliceIsSorted(t.Records, func(i, j int) bool {
		a, b := t.Records[i], t.Records[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.User != b.User {
			return a.User < b.User
		}
		return a.Program < b.Program
	})
}

// Validate checks every record and that the trace is sorted.
func (t *Trace) Validate() error {
	for i, r := range t.Records {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("record %d: %w", i, err)
		}
	}
	if !t.Sorted() {
		return fmt.Errorf("trace: records not sorted by start time")
	}
	return nil
}

// Len returns the number of records.
func (t *Trace) Len() int { return len(t.Records) }

// Span returns the [start, end) extent of the trace: the earliest session
// start and the latest session end. A nil or empty trace spans [0, 0).
func (t *Trace) Span() (start, end time.Duration) {
	if t == nil || len(t.Records) == 0 {
		return 0, 0
	}
	start = t.Records[0].Start
	for _, r := range t.Records {
		if r.Start < start {
			start = r.Start
		}
		if e := r.End(); e > end {
			end = e
		}
	}
	return start, end
}

// Users returns the sorted set of distinct users.
func (t *Trace) Users() []UserID {
	seen := make(map[UserID]struct{})
	for _, r := range t.Records {
		seen[r.User] = struct{}{}
	}
	out := make([]UserID, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Programs returns the sorted set of distinct programs referenced by
// records or the length table.
func (t *Trace) Programs() []ProgramID {
	seen := make(map[ProgramID]struct{})
	for _, r := range t.Records {
		seen[r.Program] = struct{}{}
	}
	for p := range t.ProgramLengths {
		seen[p] = struct{}{}
	}
	out := make([]ProgramID, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Window returns a new trace containing records with Start in [from, to).
// Program lengths are shared (copied by reference into a fresh map).
func (t *Trace) Window(from, to time.Duration) *Trace {
	out := New()
	for _, r := range t.Records {
		if r.Start >= from && r.Start < to {
			out.Append(r)
		}
	}
	for p, l := range t.ProgramLengths {
		out.ProgramLengths[p] = l
	}
	return out
}

// FilterProgram returns the records for one program, in start order.
func (t *Trace) FilterProgram(p ProgramID) []Record {
	var out []Record
	for _, r := range t.Records {
		if r.Program == p {
			out = append(out, r)
		}
	}
	return out
}

// Clone deep-copies the trace.
func (t *Trace) Clone() *Trace {
	out := New()
	out.Records = append([]Record(nil), t.Records...)
	for p, l := range t.ProgramLengths {
		out.ProgramLengths[p] = l
	}
	return out
}

// ProgramLength returns the program's full length. When the length table
// has no entry (raw trace), it falls back to the longest observed session
// for the program, and zero when the program never appears.
func (t *Trace) ProgramLength(p ProgramID) time.Duration {
	if l, ok := t.ProgramLengths[p]; ok {
		return l
	}
	var longest time.Duration
	for _, r := range t.Records {
		if r.Program == p && r.Duration > longest {
			longest = r.Duration
		}
	}
	return longest
}
