package trace

import (
	"testing"
	"time"

	"cablevod/internal/randdist"
)

func TestScaleCatalog(t *testing.T) {
	tr := mkTrace(
		rec(1, 0, 0, 10), rec(2, 0, 5, 10), rec(3, 1, 10, 10), rec(4, 1, 15, 10),
	)
	tr.ProgramLengths[0] = time.Hour
	tr.ProgramLengths[1] = 30 * time.Minute
	rng := randdist.NewRNG(42, 1)

	got, err := ScaleCatalog(tr, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("record count changed: %d vs %d", got.Len(), tr.Len())
	}
	// Every record maps to a copy of its original program.
	for i, r := range got.Records {
		orig := tr.Records[i].Program
		if r.Program/3 != orig {
			t.Errorf("record %d program %d is not a copy of %d", i, r.Program, orig)
		}
		if r.Start != tr.Records[i].Start {
			t.Errorf("record %d start changed", i)
		}
	}
	// Length table has n copies per original.
	if len(got.ProgramLengths) != 6 {
		t.Fatalf("length table has %d entries, want 6", len(got.ProgramLengths))
	}
	for k := ProgramID(0); k < 3; k++ {
		if got.ProgramLengths[0*3+k] != time.Hour {
			t.Errorf("copy %d of program 0 has wrong length", k)
		}
		if got.ProgramLengths[1*3+k] != 30*time.Minute {
			t.Errorf("copy %d of program 1 has wrong length", k)
		}
	}
}

func TestScaleCatalogIdentity(t *testing.T) {
	tr := mkTrace(rec(1, 0, 0, 10))
	got, err := ScaleCatalog(tr, 1, randdist.NewRNG(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.Records[0] != tr.Records[0] {
		t.Error("scale factor 1 should be an identity clone")
	}
}

func TestScaleCatalogErrors(t *testing.T) {
	tr := mkTrace(rec(1, 0, 0, 10))
	if _, err := ScaleCatalog(tr, 0, randdist.NewRNG(1, 1)); err == nil {
		t.Error("expected error for n=0")
	}
	if _, err := ScaleCatalog(tr, 2, nil); err == nil {
		t.Error("expected error for nil rng")
	}
}

func TestScaleUsers(t *testing.T) {
	tr := mkTrace(rec(1, 7, 0, 10), rec(2, 8, 5, 10))
	tr.ProgramLengths[7] = time.Hour
	rng := randdist.NewRNG(42, 2)

	got, err := ScaleUsers(tr, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 6 {
		t.Fatalf("record count = %d, want 6", got.Len())
	}
	// Each original record yields n records to the same program, with
	// copies jittered 1-60s.
	perProgram := make(map[ProgramID]int)
	users := make(map[UserID]bool)
	for _, r := range got.Records {
		perProgram[r.Program]++
		users[r.User] = true
	}
	if perProgram[7] != 3 || perProgram[8] != 3 {
		t.Errorf("per-program counts = %v", perProgram)
	}
	if len(users) != 6 {
		t.Errorf("distinct users = %d, want 6", len(users))
	}
	// Jitter bounds: copies of the record starting at 0 must start in (0, 60s].
	for _, r := range got.Records {
		if r.Program != 7 {
			continue
		}
		base := time.Duration(0)
		if r.User%3 == 0 { // copy 0 keeps original time
			if r.Start != base {
				t.Errorf("copy 0 start = %v, want %v", r.Start, base)
			}
		} else {
			if r.Start <= base || r.Start > base+60*time.Second {
				t.Errorf("jittered start = %v, want within (0s, 60s]", r.Start)
			}
		}
	}
	if got.ProgramLengths[7] != time.Hour {
		t.Error("program lengths lost")
	}
}

func TestScaleUsersErrors(t *testing.T) {
	tr := mkTrace(rec(1, 0, 0, 10))
	if _, err := ScaleUsers(tr, 0, randdist.NewRNG(1, 1)); err == nil {
		t.Error("expected error for n=0")
	}
	if _, err := ScaleUsers(tr, 2, nil); err == nil {
		t.Error("expected error for nil rng")
	}
}

func TestScaleUsersDeterministic(t *testing.T) {
	tr := mkTrace(rec(1, 7, 0, 10), rec(2, 8, 5, 10))
	a, err := ScaleUsers(tr, 4, randdist.NewRNG(9, 9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScaleUsers(tr, 4, randdist.NewRNG(9, 9))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs across identical seeds", i)
		}
	}
}
