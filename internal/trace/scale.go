package trace

import (
	"fmt"
	"time"

	"cablevod/internal/randdist"
)

// Workload scaling transforms (Section V-A). Both transforms multiply the
// number of agents by an integer factor while minimally perturbing the
// trace's statistical properties:
//
//   - ScaleCatalog(n): make n copies of every program; every event is
//     relabelled to one of the n copies of its original program, chosen
//     uniformly at random.
//   - ScaleUsers(n): make n copies of every user; every event is executed
//     n times, once per copy, with the start time jittered by 1-60 seconds
//     to avoid synchronous accesses.

// ScaleCatalog returns a new trace whose catalog is n times larger.
// Program copy k of original program p gets ID p*n + k, so copies of
// distinct programs never collide.
func ScaleCatalog(t *Trace, n int, rng *randdist.RNG) (*Trace, error) {
	if n < 1 {
		return nil, fmt.Errorf("trace: catalog scale factor must be >= 1, got %d", n)
	}
	if rng == nil {
		return nil, fmt.Errorf("trace: ScaleCatalog requires an RNG")
	}
	if n == 1 {
		return t.Clone(), nil
	}
	out := New()
	out.Records = make([]Record, 0, len(t.Records))
	for _, r := range t.Records {
		copyIdx := rng.IntN(n)
		r.Program = r.Program*ProgramID(n) + ProgramID(copyIdx)
		out.Records = append(out.Records, r)
	}
	for p, l := range t.ProgramLengths {
		for k := 0; k < n; k++ {
			out.ProgramLengths[p*ProgramID(n)+ProgramID(k)] = l
		}
	}
	out.Sort()
	return out, nil
}

// ScaleUsers returns a new trace whose user population is n times larger.
// User copy k of original user u gets ID u*n + k. Copy 0 keeps the
// original start times; copies 1..n-1 are jittered forward by a uniform
// 1-60 seconds, as in the paper.
func ScaleUsers(t *Trace, n int, rng *randdist.RNG) (*Trace, error) {
	if n < 1 {
		return nil, fmt.Errorf("trace: user scale factor must be >= 1, got %d", n)
	}
	if rng == nil {
		return nil, fmt.Errorf("trace: ScaleUsers requires an RNG")
	}
	if n == 1 {
		return t.Clone(), nil
	}
	out := New()
	out.Records = make([]Record, 0, len(t.Records)*n)
	for _, r := range t.Records {
		for k := 0; k < n; k++ {
			nr := r
			nr.User = r.User*UserID(n) + UserID(k)
			if k > 0 {
				nr.Start += time.Duration(1+rng.IntN(60)) * time.Second
			}
			out.Records = append(out.Records, nr)
		}
	}
	for p, l := range t.ProgramLengths {
		out.ProgramLengths[p] = l
	}
	out.Sort()
	return out, nil
}
