// Package segment implements the program-to-segment arithmetic of the
// paper's cache: programs are divided into 5-minute segments broadcast at
// the MPEG-2 SDTV stream rate, and the index server places individual
// segments on peers (Section IV-B.1).
package segment

import (
	"fmt"
	"time"

	"cablevod/internal/trace"
	"cablevod/internal/units"
)

// ID identifies one segment of one program.
type ID struct {
	Program trace.ProgramID
	Index   int
}

// String renders "program/index" for logs and errors.
func (id ID) String() string {
	return fmt.Sprintf("%d/%d", id.Program, id.Index)
}

// Size is the byte size of a full segment: 5 minutes at 8.06 Mb/s
// (~302 MB).
var Size = units.StreamRate.BytesIn(units.SegmentDuration)

// Count returns how many segments a program of the given length occupies.
// The final partial segment counts as a whole segment. Zero-length
// programs occupy zero segments.
func Count(length time.Duration) int {
	if length <= 0 {
		return 0
	}
	return int((length + units.SegmentDuration - 1) / units.SegmentDuration)
}

// SizeOf returns the byte size of segment idx of a program with the given
// length; the last segment may be partial.
func SizeOf(length time.Duration, idx int) units.ByteSize {
	n := Count(length)
	if idx < 0 || idx >= n {
		panic(fmt.Sprintf("segment: index %d out of range for %d segments", idx, n))
	}
	if idx < n-1 {
		return Size
	}
	rem := length - time.Duration(n-1)*units.SegmentDuration
	return units.StreamRate.BytesIn(rem)
}

// ProgramSize returns the total stored byte size of a program.
func ProgramSize(length time.Duration) units.ByteSize {
	return units.StreamRate.BytesIn(length)
}

// DurationOf returns the playback time of segment idx of a program with
// the given length.
func DurationOf(length time.Duration, idx int) time.Duration {
	n := Count(length)
	if idx < 0 || idx >= n {
		panic(fmt.Sprintf("segment: index %d out of range for %d segments", idx, n))
	}
	if idx < n-1 {
		return units.SegmentDuration
	}
	return length - time.Duration(n-1)*units.SegmentDuration
}

// At returns the segment index playing at the given offset into a program.
func At(offset time.Duration) int {
	if offset < 0 {
		panic(fmt.Sprintf("segment: negative offset %v", offset))
	}
	return int(offset / units.SegmentDuration)
}

// All returns the segment IDs of a whole program, in playback order.
func All(p trace.ProgramID, length time.Duration) []ID {
	n := Count(length)
	out := make([]ID, n)
	for i := range out {
		out[i] = ID{Program: p, Index: i}
	}
	return out
}
