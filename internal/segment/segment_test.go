package segment

import (
	"testing"
	"testing/quick"
	"time"

	"cablevod/internal/units"
)

func TestCount(t *testing.T) {
	tests := []struct {
		length time.Duration
		want   int
	}{
		{0, 0},
		{-time.Minute, 0},
		{time.Second, 1},
		{5 * time.Minute, 1},
		{5*time.Minute + time.Second, 2},
		{60 * time.Minute, 12},
		{100 * time.Minute, 20},
		{97 * time.Minute, 20},
	}
	for _, tt := range tests {
		if got := Count(tt.length); got != tt.want {
			t.Errorf("Count(%v) = %d, want %d", tt.length, got, tt.want)
		}
	}
}

func TestSizeConstant(t *testing.T) {
	if Size != 302_250_000 {
		t.Errorf("segment Size = %d bytes, want 302250000 (5 min at 8.06 Mb/s)", Size)
	}
}

func TestSizeOf(t *testing.T) {
	length := 12 * time.Minute // 3 segments: 5, 5, 2 minutes
	if got := SizeOf(length, 0); got != Size {
		t.Errorf("segment 0 size = %v, want %v", got, Size)
	}
	if got := SizeOf(length, 1); got != Size {
		t.Errorf("segment 1 size = %v, want %v", got, Size)
	}
	want := units.StreamRate.BytesIn(2 * time.Minute)
	if got := SizeOf(length, 2); got != want {
		t.Errorf("partial segment size = %v, want %v", got, want)
	}
}

func TestSizeOfPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SizeOf(10*time.Minute, 2)
}

func TestDurationOf(t *testing.T) {
	length := 12 * time.Minute
	if got := DurationOf(length, 0); got != 5*time.Minute {
		t.Errorf("segment 0 duration = %v", got)
	}
	if got := DurationOf(length, 2); got != 2*time.Minute {
		t.Errorf("last segment duration = %v, want 2m", got)
	}
}

func TestAt(t *testing.T) {
	tests := []struct {
		offset time.Duration
		want   int
	}{
		{0, 0},
		{4*time.Minute + 59*time.Second, 0},
		{5 * time.Minute, 1},
		{47 * time.Minute, 9},
	}
	for _, tt := range tests {
		if got := At(tt.offset); got != tt.want {
			t.Errorf("At(%v) = %d, want %d", tt.offset, got, tt.want)
		}
	}
}

func TestAll(t *testing.T) {
	ids := All(7, 11*time.Minute)
	if len(ids) != 3 {
		t.Fatalf("got %d ids, want 3", len(ids))
	}
	for i, id := range ids {
		if id.Program != 7 || id.Index != i {
			t.Errorf("ids[%d] = %v", i, id)
		}
	}
}

func TestIDString(t *testing.T) {
	if got := (ID{Program: 12, Index: 3}).String(); got != "12/3" {
		t.Errorf("String() = %q, want \"12/3\"", got)
	}
}

func TestSegmentSizesSumToProgramSize(t *testing.T) {
	f := func(mins uint16) bool {
		length := time.Duration(mins%600) * time.Minute
		n := Count(length)
		var total units.ByteSize
		for i := 0; i < n; i++ {
			total += SizeOf(length, i)
		}
		return total == ProgramSize(length)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSegmentDurationsSumToLength(t *testing.T) {
	f := func(secs uint32) bool {
		length := time.Duration(secs%36000) * time.Second
		n := Count(length)
		var total time.Duration
		for i := 0; i < n; i++ {
			total += DurationOf(length, i)
		}
		return total == length
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
