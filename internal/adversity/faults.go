// Package adversity is the supply-side fault-injection layer: high-level
// fault models — node failures, cold restarts, coax degradation,
// heterogeneous fleets — that compile down to the engine's disruption
// primitives (core.Disruption) against a built plant. Every fault is
// deterministic: which boxes fail, and when, depends only on the fault's
// parameters and seed, never on wall clock or map order, so adversity
// runs obey the same bit-identical reproducibility contract as clean
// runs.
//
// The package also contains the fork runner (forks.go): restoring one
// snapshot onto N strategies and racing them through the same incident.
package adversity

import (
	"fmt"
	"time"

	"cablevod/internal/core"
	"cablevod/internal/hfc"
	"cablevod/internal/randdist"
	"cablevod/internal/units"
)

// Fault is one high-level fault model. A Fault compiles itself into
// engine disruptions against the built plant, which makes every fault a
// core.Disruptor usable directly with System.Disrupt.
type Fault interface {
	// Kind names the fault model (the spec-file phase kind).
	Kind() string
	// Validate checks the fault's parameters, plant-independently.
	Validate() error
	// Disruptions compiles the fault for the given plant and run
	// configuration (core.Disruptor).
	Disruptions(topo *hfc.Topology, cfg core.Config) ([]core.Disruption, error)
}

// Compile validates and compiles a fault list into one merged disruption
// schedule.
func Compile(faults []Fault, topo *hfc.Topology, cfg core.Config) ([]core.Disruption, error) {
	var out []core.Disruption
	for i, f := range faults {
		if f == nil {
			return nil, fmt.Errorf("adversity: fault %d is nil", i)
		}
		if err := f.Validate(); err != nil {
			return nil, fmt.Errorf("adversity: fault %d (%s): %w", i, f.Kind(), err)
		}
		ds, err := f.Disruptions(topo, cfg)
		if err != nil {
			return nil, fmt.Errorf("adversity: fault %d (%s): %w", i, f.Kind(), err)
		}
		out = append(out, ds...)
	}
	return out, nil
}

// basePeerStorage reads the plant's per-box storage contribution; the
// topology has already normalized zero config values to the defaults.
func basePeerStorage(topo *hfc.Topology) units.ByteSize {
	return topo.Config().PerPeerStorage
}

// baseCoaxCapacity reads the plant's VoD coax bandwidth.
func baseCoaxCapacity(topo *hfc.Topology) units.BitRate {
	return topo.Config().CoaxCapacity
}

// neighborhoods resolves a fault's target list: the named neighborhood,
// or all of them for -1.
func neighborhoods(topo *hfc.Topology, nb int) ([]*hfc.Neighborhood, error) {
	if nb == -1 {
		return topo.Neighborhoods(), nil
	}
	if nb < 0 || nb >= topo.NeighborhoodCount() {
		return nil, fmt.Errorf("neighborhood %d of %d", nb, topo.NeighborhoodCount())
	}
	return topo.Neighborhoods()[nb : nb+1], nil
}

// uniformCapacities builds an n-box capacity vector at the plant's
// uniform baseline.
func uniformCapacities(n int, per units.ByteSize) []units.ByteSize {
	caps := make([]units.ByteSize, n)
	for i := range caps {
		caps[i] = per
	}
	return caps
}

// NodeFailure takes a fraction of a neighborhood's boxes out of the
// cooperative cache: their storage contribution drops to zero (the box
// still plays its own television — failure is modeled on the supply
// side). The failed set is a deterministic seeded sample. A ramp spreads
// the failure over hourly steps; a restore time brings the full fleet
// back.
type NodeFailure struct {
	// At is when the failure begins.
	At time.Duration
	// Neighborhood is the affected neighborhood, or -1 for all.
	Neighborhood int
	// Fraction in (0, 1] of each affected neighborhood's boxes to fail.
	Fraction float64
	// RampHours spreads the failure linearly over this many hourly
	// steps (0 or 1 = instant).
	RampHours int
	// RestoreAt, when positive, restores every failed box's capacity at
	// that time. The cache does not refill by magic — contents were
	// evicted; only supply returns.
	RestoreAt time.Duration
	// Seed picks the failed sample deterministically.
	Seed uint64
}

// Kind names the fault.
func (f NodeFailure) Kind() string { return "node_failure" }

// Validate checks the parameters.
func (f NodeFailure) Validate() error {
	if f.At < 0 {
		return fmt.Errorf("negative time %v", f.At)
	}
	if f.Neighborhood < -1 {
		return fmt.Errorf("neighborhood %d", f.Neighborhood)
	}
	if f.Fraction <= 0 || f.Fraction > 1 {
		return fmt.Errorf("fraction %v outside (0, 1]", f.Fraction)
	}
	if f.RampHours < 0 {
		return fmt.Errorf("negative ramp %d hours", f.RampHours)
	}
	if f.RestoreAt != 0 && f.RestoreAt <= f.At {
		return fmt.Errorf("restore at %v not after failure at %v", f.RestoreAt, f.At)
	}
	return nil
}

// Disruptions compiles the failure into per-step capacity vectors.
func (f NodeFailure) Disruptions(topo *hfc.Topology, cfg core.Config) ([]core.Disruption, error) {
	nbs, err := neighborhoods(topo, f.Neighborhood)
	if err != nil {
		return nil, err
	}
	per := basePeerStorage(topo)
	steps := f.RampHours
	if steps < 1 {
		steps = 1
	}
	var out []core.Disruption
	for _, nb := range nbs {
		n := len(nb.Peers())
		failed := int(float64(n)*f.Fraction + 0.5)
		if failed < 1 {
			failed = 1
		}
		if failed > n {
			failed = n
		}
		// The failure order is a seeded permutation per neighborhood, so
		// equal seeds reproduce the same outage exactly.
		order := randdist.NewRNG(f.Seed, uint64(nb.ID())).Perm(n)
		for step := 1; step <= steps; step++ {
			downBy := failed * step / steps
			caps := uniformCapacities(n, per)
			for i := 0; i < downBy; i++ {
				caps[order[i]] = 0
			}
			out = append(out, core.Disruption{
				At:             f.At + time.Duration(step-1)*time.Hour,
				Kind:           core.DisruptPeerCapacities,
				Neighborhood:   nb.ID(),
				PeerCapacities: caps,
			})
		}
		if f.RestoreAt > 0 {
			out = append(out, core.Disruption{
				At:             f.RestoreAt,
				Kind:           core.DisruptPeerCapacities,
				Neighborhood:   nb.ID(),
				PeerCapacities: uniformCapacities(n, per),
			})
		}
	}
	return out, nil
}

// ColdRestart wipes a neighborhood's cache at a point in time: contents
// and placements are lost, popularity history and meters survive — a
// software restart losing volatile state.
type ColdRestart struct {
	// At is when the restart happens.
	At time.Duration
	// Neighborhood is the affected neighborhood, or -1 for all.
	Neighborhood int
}

// Kind names the fault.
func (f ColdRestart) Kind() string { return "cold_restart" }

// Validate checks the parameters.
func (f ColdRestart) Validate() error {
	if f.At < 0 {
		return fmt.Errorf("negative time %v", f.At)
	}
	if f.Neighborhood < -1 {
		return fmt.Errorf("neighborhood %d", f.Neighborhood)
	}
	return nil
}

// Disruptions compiles the restart.
func (f ColdRestart) Disruptions(topo *hfc.Topology, cfg core.Config) ([]core.Disruption, error) {
	if _, err := neighborhoods(topo, f.Neighborhood); err != nil {
		return nil, err
	}
	return []core.Disruption{{At: f.At, Kind: core.DisruptColdRestart, Neighborhood: f.Neighborhood}}, nil
}

// CoaxDegrade scales a neighborhood's VoD-available coax bandwidth —
// an amplifier fault or ingress noise eating spectrum. In-flight
// broadcasts drain naturally; new admissions see the reduced capacity.
type CoaxDegrade struct {
	// At is when degradation begins.
	At time.Duration
	// Neighborhood is the affected neighborhood, or -1 for all.
	Neighborhood int
	// Factor in (0, 1) scales the configured capacity.
	Factor float64
	// RestoreAt, when positive, returns the channel to full capacity.
	RestoreAt time.Duration
}

// Kind names the fault.
func (f CoaxDegrade) Kind() string { return "coax_degrade" }

// Validate checks the parameters.
func (f CoaxDegrade) Validate() error {
	if f.At < 0 {
		return fmt.Errorf("negative time %v", f.At)
	}
	if f.Neighborhood < -1 {
		return fmt.Errorf("neighborhood %d", f.Neighborhood)
	}
	if f.Factor <= 0 || f.Factor >= 1 {
		return fmt.Errorf("factor %v outside (0, 1)", f.Factor)
	}
	if f.RestoreAt != 0 && f.RestoreAt <= f.At {
		return fmt.Errorf("restore at %v not after degrade at %v", f.RestoreAt, f.At)
	}
	return nil
}

// Disruptions compiles the degradation.
func (f CoaxDegrade) Disruptions(topo *hfc.Topology, cfg core.Config) ([]core.Disruption, error) {
	if _, err := neighborhoods(topo, f.Neighborhood); err != nil {
		return nil, err
	}
	base := baseCoaxCapacity(topo)
	out := []core.Disruption{{
		At:           f.At,
		Kind:         core.DisruptCoaxCapacity,
		Neighborhood: f.Neighborhood,
		CoaxCapacity: units.BitRate(float64(base) * f.Factor),
	}}
	if f.RestoreAt > 0 {
		out = append(out, core.Disruption{
			At:           f.RestoreAt,
			Kind:         core.DisruptCoaxCapacity,
			Neighborhood: f.Neighborhood,
			CoaxCapacity: base,
		})
	}
	return out, nil
}

// HeteroCache replaces the uniform per-box storage contribution with a
// deterministic heterogeneous spread in [Min, Max] — the realistic
// deployment where boxes of several hardware generations contribute
// unevenly. Applied at time At (use 0 for "from the start").
type HeteroCache struct {
	// At is when the fleet becomes heterogeneous.
	At time.Duration
	// Neighborhood is the affected neighborhood, or -1 for all.
	Neighborhood int
	// Min and Max bound each box's contribution; each box draws
	// uniformly (seeded) from the inclusive range.
	Min, Max units.ByteSize
	// Seed picks the per-box draws deterministically.
	Seed uint64
}

// Kind names the fault.
func (f HeteroCache) Kind() string { return "hetero_cache" }

// Validate checks the parameters.
func (f HeteroCache) Validate() error {
	if f.At < 0 {
		return fmt.Errorf("negative time %v", f.At)
	}
	if f.Neighborhood < -1 {
		return fmt.Errorf("neighborhood %d", f.Neighborhood)
	}
	if f.Min < 0 || f.Max < f.Min {
		return fmt.Errorf("capacity range [%v, %v]", f.Min, f.Max)
	}
	return nil
}

// Disruptions compiles the spread.
func (f HeteroCache) Disruptions(topo *hfc.Topology, cfg core.Config) ([]core.Disruption, error) {
	nbs, err := neighborhoods(topo, f.Neighborhood)
	if err != nil {
		return nil, err
	}
	span := int64(f.Max - f.Min)
	var out []core.Disruption
	for _, nb := range nbs {
		n := len(nb.Peers())
		rng := randdist.NewRNG(f.Seed, uint64(nb.ID()))
		caps := make([]units.ByteSize, n)
		for i := range caps {
			if span == 0 {
				caps[i] = f.Min
				continue
			}
			caps[i] = f.Min + units.ByteSize(rng.Int64N(span+1))
		}
		out = append(out, core.Disruption{
			At:             f.At,
			Kind:           core.DisruptPeerCapacities,
			Neighborhood:   nb.ID(),
			PeerCapacities: caps,
		})
	}
	return out, nil
}
