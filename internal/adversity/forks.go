package adversity

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"cablevod/internal/core"
	"cablevod/internal/trace"
	"cablevod/internal/units"
)

// ForkOptions tunes a comparative fork run. The zero value restores each
// arm at the snapshot's parallelism and reports the incident window from
// the fork point to the end of the replay.
type ForkOptions struct {
	// Parallelism, when non-zero, overrides each arm's worker-pool
	// width. Results are bit-identical at every level.
	Parallelism int

	// IncidentFrom and IncidentTo bound the coax-stress report window.
	// Zero IncidentFrom means the fork point; zero IncidentTo means the
	// end of the replayed records.
	IncidentFrom, IncidentTo time.Duration
}

// ForkArm is one strategy's outcome over the post-fork window.
type ForkArm struct {
	// Strategy is the arm's strategy name.
	Strategy string

	// HitRatio is the segment hit ratio over requests served after the
	// fork point (not diluted by the shared warm-up history).
	HitRatio float64

	// Savings is 1 - serverBits/demandBits over the post-fork window:
	// the fraction of demand the cooperative cache absorbed while the
	// incident played out.
	Savings float64

	// CoaxP95 is the 95th-percentile per-neighborhood coax broadcast
	// rate over the incident window.
	CoaxP95 units.BitRate

	// Result is the arm's full end-of-run result.
	Result *core.Result
}

// ForkReport compares N strategies raced from one warm snapshot through
// the same incident.
type ForkReport struct {
	// At is the fork point (the snapshot's virtual clock).
	At time.Duration

	// From and To are the resolved incident report window.
	From, To time.Duration

	// Baseline is the counter state every arm inherited.
	Baseline core.Counters

	// Arms are the per-strategy outcomes, in the order requested.
	Arms []ForkArm
}

// RunForks restores the snapshot once per strategy and replays future
// through every arm concurrently. Each arm inherits the same warm caches,
// in-flight sessions and pending disruptions; only the decision policy
// differs, so the report isolates the strategy's contribution to riding
// out whatever the disruption schedule does next.
//
// future must be the records after the snapshot point, in timestamp
// order — the tail of the same trace the snapshotted run was consuming.
func RunForks(st *core.SystemState, strategies []string, future []trace.Record, opts ForkOptions) (*ForkReport, error) {
	if st == nil {
		return nil, fmt.Errorf("adversity: nil snapshot")
	}
	if len(strategies) == 0 {
		return nil, fmt.Errorf("adversity: no fork strategies")
	}
	seen := make(map[string]bool, len(strategies))
	for _, s := range strategies {
		if s == "" {
			return nil, fmt.Errorf("adversity: empty fork strategy name")
		}
		if seen[s] {
			return nil, fmt.Errorf("adversity: duplicate fork strategy %q", s)
		}
		seen[s] = true
	}

	from := opts.IncidentFrom
	if from == 0 {
		from = st.At()
	}
	to := opts.IncidentTo
	if to == 0 {
		to = replayEnd(st.At(), future)
	}
	if to <= from {
		return nil, fmt.Errorf("adversity: incident window [%v, %v) is empty", from, to)
	}

	baseCounters := st.TotalCounters()
	baseServer, baseDemand := st.TotalBits()

	report := &ForkReport{At: st.At(), From: from, To: to, Baseline: baseCounters, Arms: make([]ForkArm, len(strategies))}
	errs := make([]error, len(strategies))
	var wg sync.WaitGroup
	for i, strategy := range strategies {
		wg.Add(1)
		go func(i int, strategy string) {
			defer wg.Done()
			arm, err := runArm(st, strategy, future, opts, from, to, baseCounters, baseServer, baseDemand)
			if err != nil {
				errs[i] = fmt.Errorf("adversity: fork arm %q: %w", strategy, err)
				return
			}
			report.Arms[i] = arm
		}(i, strategy)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return report, nil
}

// runArm restores one arm, replays the future through it, and measures
// the post-fork window.
func runArm(st *core.SystemState, strategy string, future []trace.Record, opts ForkOptions, from, to time.Duration, base core.Counters, baseServer, baseDemand int64) (ForkArm, error) {
	sys, err := core.RestoreSystem(st, core.RestoreOptions{Strategy: strategy, Parallelism: opts.Parallelism})
	if err != nil {
		return ForkArm{}, err
	}
	if err := sys.SubmitBatch(future); err != nil {
		return ForkArm{}, err
	}
	res, err := sys.Close()
	if err != nil {
		return ForkArm{}, err
	}

	arm := ForkArm{Strategy: strategy, Result: res}
	hits := res.Counters.Hits - base.Hits
	reqs := res.Counters.SegmentRequests - base.SegmentRequests
	if reqs > 0 {
		arm.HitRatio = float64(hits) / float64(reqs)
	}
	server, demand := sys.TotalBits()
	if d := demand - baseDemand; d > 0 {
		arm.Savings = 1 - float64(server-baseServer)/float64(d)
	}
	arm.CoaxP95 = sys.CoaxWindowStats(int64(from/time.Hour), ceilHour(to)).P95
	return arm, nil
}

// replayEnd finds when the last replayed playback finishes.
func replayEnd(at time.Duration, future []trace.Record) time.Duration {
	end := at
	for _, r := range future {
		if e := r.End(); e > end {
			end = e
		}
	}
	return end
}

// ceilHour converts a duration to an exclusive absolute-hour bound.
func ceilHour(d time.Duration) int64 {
	h := int64(d / time.Hour)
	if d%time.Hour != 0 {
		h++
	}
	return h
}

// fmtHours renders a virtual-clock instant compactly: whole hours as
// "36h", anything else in Go duration syntax.
func fmtHours(d time.Duration) string {
	if d%time.Hour == 0 {
		return fmt.Sprintf("%dh", int64(d/time.Hour))
	}
	return d.String()
}

// Table renders the report as an aligned text table for terminals and
// logs: one row per arm, best post-fork savings marked.
func (r *ForkReport) Table() string {
	best := -1
	for i, arm := range r.Arms {
		if best == -1 || arm.Savings > r.Arms[best].Savings {
			best = i
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "fork at %s — %d arms, incident window %s..%s\n",
		fmtHours(r.At), len(r.Arms), fmtHours(r.From), fmtHours(r.To))
	tw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "STRATEGY\tHIT RATIO\tSAVINGS\tCOAX P95\t")
	for i, arm := range r.Arms {
		mark := ""
		if i == best && len(r.Arms) > 1 {
			mark = " *"
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%.1f%%\t%v\t%s\n",
			arm.Strategy, arm.HitRatio, arm.Savings*100, arm.CoaxP95, mark)
	}
	tw.Flush()
	if len(r.Arms) > 1 {
		b.WriteString("* best post-fork savings\n")
	}
	return b.String()
}

// Strategies returns the arm names in report order.
func (r *ForkReport) Strategies() []string {
	out := make([]string, len(r.Arms))
	for i, arm := range r.Arms {
		out[i] = arm.Strategy
	}
	return out
}

// BestArm returns the arm with the highest post-fork savings (first on
// ties in report order).
func (r *ForkReport) BestArm() *ForkArm {
	if len(r.Arms) == 0 {
		return nil
	}
	best := 0
	for i := range r.Arms {
		if r.Arms[i].Savings > r.Arms[best].Savings {
			best = i
		}
	}
	return &r.Arms[best]
}

// SortBySavings reorders arms best-first (stable).
func (r *ForkReport) SortBySavings() {
	sort.SliceStable(r.Arms, func(i, j int) bool { return r.Arms[i].Savings > r.Arms[j].Savings })
}
