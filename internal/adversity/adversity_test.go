package adversity

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"cablevod/internal/core"
	"cablevod/internal/hfc"
	"cablevod/internal/synth"
	"cablevod/internal/trace"
	"cablevod/internal/units"
)

func testTrace(t *testing.T) *trace.Trace {
	t.Helper()
	scfg := synth.TestConfig()
	scfg.Users = 900
	scfg.Days = 2
	tr, err := synth.Generate(scfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func testConfig(strategy string, parallelism int) core.Config {
	return core.Config{
		Topology:     hfc.Config{NeighborhoodSize: 300, PerPeerStorage: 2 * units.GB},
		StrategyName: strategy,
		Parallelism:  parallelism,
	}
}

func testTopology(t *testing.T, tr *trace.Trace) *hfc.Topology {
	t.Helper()
	topo, err := hfc.Build(testConfig("lfu", 1).Topology, tr.Users())
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// splitWindows chunks a sorted record sequence into fixed-duration
// submission windows, the way a live driver feeds the engine.
func splitWindows(recs []trace.Record, win time.Duration) [][]trace.Record {
	var out [][]trace.Record
	start := 0
	next := win
	for i, r := range recs {
		for r.Start >= next {
			out = append(out, recs[start:i])
			start = i
			next += win
		}
	}
	return append(out, recs[start:])
}

func TestFaultValidation(t *testing.T) {
	bad := []Fault{
		NodeFailure{At: -time.Hour, Fraction: 0.5},
		NodeFailure{Fraction: 0},
		NodeFailure{Fraction: 1.5},
		NodeFailure{Fraction: 0.5, RampHours: -1},
		NodeFailure{At: 2 * time.Hour, Fraction: 0.5, RestoreAt: time.Hour},
		NodeFailure{Fraction: 0.5, Neighborhood: -2},
		ColdRestart{At: -time.Second},
		CoaxDegrade{Factor: 0},
		CoaxDegrade{Factor: 1},
		CoaxDegrade{At: 3 * time.Hour, Factor: 0.5, RestoreAt: 3 * time.Hour},
		HeteroCache{Min: 2 * units.GB, Max: units.GB},
		HeteroCache{Min: -1},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("fault %d (%T) validated", i, f)
		}
	}
	good := []Fault{
		NodeFailure{Fraction: 0.25, RampHours: 4, Seed: 7},
		ColdRestart{At: time.Hour, Neighborhood: -1},
		CoaxDegrade{At: time.Hour, Factor: 0.5, RestoreAt: 2 * time.Hour},
		HeteroCache{Min: units.GB, Max: 4 * units.GB},
	}
	for i, f := range good {
		if err := f.Validate(); err != nil {
			t.Errorf("fault %d (%T): %v", i, f, err)
		}
	}
}

func TestCompileRejectsBadFault(t *testing.T) {
	tr := testTrace(t)
	topo := testTopology(t, tr)
	cfg := testConfig("lfu", 1)
	if _, err := Compile([]Fault{NodeFailure{Fraction: 2}}, topo, cfg); err == nil {
		t.Fatal("bad fault compiled")
	}
	if _, err := Compile([]Fault{nil}, topo, cfg); err == nil {
		t.Fatal("nil fault compiled")
	}
	if _, err := Compile([]Fault{ColdRestart{Neighborhood: topo.NeighborhoodCount()}}, topo, cfg); err == nil {
		t.Fatal("out-of-range neighborhood compiled")
	}
}

func TestNodeFailureCompilation(t *testing.T) {
	tr := testTrace(t)
	topo := testTopology(t, tr)
	cfg := testConfig("lfu", 1)
	f := NodeFailure{At: 24 * time.Hour, Neighborhood: 0, Fraction: 0.25, RampHours: 3, RestoreAt: 40 * time.Hour, Seed: 11}

	ds, err := f.Disruptions(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 4 {
		t.Fatalf("got %d disruptions, want 3 ramp steps + restore", len(ds))
	}
	n := topo.Neighborhoods()[0].Size()
	wantFailed := int(float64(n)*0.25 + 0.5)
	prevDown := 0
	for step, d := range ds[:3] {
		if d.Kind != core.DisruptPeerCapacities || d.Neighborhood != 0 {
			t.Fatalf("step %d: %+v", step, d)
		}
		if want := f.At + time.Duration(step)*time.Hour; d.At != want {
			t.Fatalf("step %d at %v, want %v", step, d.At, want)
		}
		down := 0
		for _, c := range d.PeerCapacities {
			if c == 0 {
				down++
			}
		}
		if down < prevDown {
			t.Fatalf("step %d fails %d boxes after %d — ramp went backwards", step, down, prevDown)
		}
		prevDown = down
	}
	if prevDown != wantFailed {
		t.Fatalf("final step fails %d boxes, want %d", prevDown, wantFailed)
	}
	restore := ds[3]
	if restore.At != f.RestoreAt {
		t.Fatalf("restore at %v, want %v", restore.At, f.RestoreAt)
	}
	for i, c := range restore.PeerCapacities {
		if c != 2*units.GB {
			t.Fatalf("restore box %d capacity %v", i, c)
		}
	}

	// Same parameters replay the exact same outage; a different seed
	// fails a different set of boxes.
	again, err := f.Disruptions(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds, again) {
		t.Fatal("recompilation differs")
	}
	f.Seed = 12
	other, err := f.Disruptions(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(ds[2].PeerCapacities, other[2].PeerCapacities) {
		t.Fatal("different seeds failed the same boxes")
	}
}

func TestCoaxDegradeCompilation(t *testing.T) {
	tr := testTrace(t)
	topo := testTopology(t, tr)
	cfg := testConfig("lfu", 1)
	base := topo.Config().CoaxCapacity
	f := CoaxDegrade{At: 10 * time.Hour, Neighborhood: -1, Factor: 0.5, RestoreAt: 20 * time.Hour}
	ds, err := f.Disruptions(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 {
		t.Fatalf("got %d disruptions", len(ds))
	}
	if ds[0].Kind != core.DisruptCoaxCapacity || ds[0].CoaxCapacity != units.BitRate(float64(base)*0.5) {
		t.Fatalf("degrade: %+v", ds[0])
	}
	if ds[1].CoaxCapacity != base || ds[1].At != f.RestoreAt {
		t.Fatalf("restore: %+v", ds[1])
	}
}

func TestHeteroCacheCompilation(t *testing.T) {
	tr := testTrace(t)
	topo := testTopology(t, tr)
	cfg := testConfig("lfu", 1)
	f := HeteroCache{Neighborhood: -1, Min: units.GB, Max: 4 * units.GB, Seed: 3}
	ds, err := f.Disruptions(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != topo.NeighborhoodCount() {
		t.Fatalf("got %d disruptions for %d neighborhoods", len(ds), topo.NeighborhoodCount())
	}
	varied := false
	for _, d := range ds {
		for _, c := range d.PeerCapacities {
			if c < f.Min || c > f.Max {
				t.Fatalf("capacity %v outside [%v, %v]", c, f.Min, f.Max)
			}
			if c != d.PeerCapacities[0] {
				varied = true
			}
		}
	}
	if !varied {
		t.Fatal("hetero fleet came out uniform")
	}
	again, _ := f.Disruptions(topo, cfg)
	if !reflect.DeepEqual(ds, again) {
		t.Fatal("recompilation differs")
	}

	flat := HeteroCache{Min: 2 * units.GB, Max: 2 * units.GB}
	fds, err := flat.Disruptions(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range fds {
		for _, c := range d.PeerCapacities {
			if c != 2*units.GB {
				t.Fatalf("zero-span draw %v", c)
			}
		}
	}
}

// TestFaultsEndToEnd drives a full run through a mid-trace outage plus a
// coax degrade and checks the adversity path keeps the determinism
// contract: identical results at parallelism 1 and 4.
func TestFaultsEndToEnd(t *testing.T) {
	tr := testTrace(t)
	faults := []Fault{
		NodeFailure{At: 18 * time.Hour, Neighborhood: -1, Fraction: 0.3, RampHours: 2, Seed: 5},
		CoaxDegrade{At: 20 * time.Hour, Neighborhood: -1, Factor: 0.6, RestoreAt: 30 * time.Hour},
		ColdRestart{At: 36 * time.Hour, Neighborhood: 0},
	}
	run := func(parallelism int) *core.Result {
		sys, err := core.NewSystem(testConfig("lfu", parallelism), core.WorkloadFromTrace(tr))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range faults {
			if err := sys.Disrupt(f); err != nil {
				t.Fatal(err)
			}
		}
		if err := sys.SubmitBatch(tr.Records); err != nil {
			t.Fatal(err)
		}
		res, err := sys.Close()
		if err != nil {
			t.Fatal(err)
		}
		res.Config.Parallelism = 0
		return res
	}
	r1 := run(1)
	if r1.Counters.Evictions == 0 {
		t.Fatal("outage evicted nothing — fault injection is vacuous")
	}
	r4 := run(4)
	if !reflect.DeepEqual(r1, r4) {
		t.Fatal("adversity run diverges across parallelism")
	}
}

func TestRunForksValidation(t *testing.T) {
	if _, err := RunForks(nil, []string{"lfu"}, nil, ForkOptions{}); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	st := &core.SystemState{}
	if _, err := RunForks(st, nil, nil, ForkOptions{}); err == nil {
		t.Fatal("empty strategy list accepted")
	}
	if _, err := RunForks(st, []string{"lfu", "lfu"}, nil, ForkOptions{}); err == nil {
		t.Fatal("duplicate strategy accepted")
	}
	if _, err := RunForks(st, []string{""}, nil, ForkOptions{}); err == nil {
		t.Fatal("empty strategy name accepted")
	}
}

// TestRunForks warms one system through a looming outage, snapshots, and
// races three strategies through the incident. The report must carry one
// arm per strategy, measure only the post-fork window, and come out
// identical on a rerun.
func TestRunForks(t *testing.T) {
	tr := testTrace(t)
	windows := splitWindows(tr.Records, 6*time.Hour)
	cut := len(windows) / 2

	sys, err := core.NewSystem(testConfig("lfu", 2), core.WorkloadFromTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Disrupt(NodeFailure{At: 30 * time.Hour, Neighborhood: -1, Fraction: 0.5, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	var tail []trace.Record
	for i, w := range windows {
		if i >= cut {
			tail = append(tail, w...)
			continue
		}
		if err := sys.SubmitBatch(w); err != nil {
			t.Fatal(err)
		}
	}
	st, err := sys.ExportState()
	if err != nil {
		t.Fatal(err)
	}

	strategies := []string{"lfu", "lru", "gdsf"}
	report, err := RunForks(st, strategies, tail, ForkOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if report.At != st.At() {
		t.Fatalf("report at %v, snapshot at %v", report.At, st.At())
	}
	if !reflect.DeepEqual(report.Strategies(), strategies) {
		t.Fatalf("arms %v, want %v", report.Strategies(), strategies)
	}
	base := st.TotalCounters()
	for _, arm := range report.Arms {
		if arm.Result == nil {
			t.Fatalf("arm %q has no result", arm.Strategy)
		}
		if arm.HitRatio < 0 || arm.HitRatio > 1 {
			t.Fatalf("arm %q hit ratio %v", arm.Strategy, arm.HitRatio)
		}
		if arm.Result.Counters.SegmentRequests <= base.SegmentRequests {
			t.Fatalf("arm %q served nothing after the fork", arm.Strategy)
		}
		if arm.Result.Counters.Evictions == 0 {
			t.Fatalf("arm %q rode out the outage without evictions", arm.Strategy)
		}
	}
	if report.BestArm() == nil {
		t.Fatal("no best arm")
	}

	table := report.Table()
	for _, s := range strategies {
		if !strings.Contains(table, s) {
			t.Fatalf("table misses %q:\n%s", s, table)
		}
	}
	if !strings.Contains(table, "STRATEGY") || !strings.Contains(table, "COAX P95") {
		t.Fatalf("table misses header:\n%s", table)
	}

	// A second identical race must reproduce the first bit for bit, and
	// the lfu arm must match the original system simply continuing.
	again, err := RunForks(st, strategies, tail, ForkOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(report, again) {
		t.Fatal("fork race is not deterministic")
	}
	if err := sys.SubmitBatch(tail); err != nil {
		t.Fatal(err)
	}
	contRes, err := sys.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(report.Arms[0].Result, contRes) {
		t.Fatal("lfu arm differs from the uninterrupted continuation")
	}
}
