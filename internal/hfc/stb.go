package hfc

import (
	"fmt"

	"cablevod/internal/units"
)

// DefaultMaxStreams is the set-top box concurrency limit: typical boxes
// cannot be active on more than two logical channels of the coaxial line,
// counting both sending and receiving (Section V-C).
const DefaultMaxStreams = 2

// DefaultPerPeerStorage is the storage a set-top box contributes to the
// cooperative cache: the paper assumes at most 10 GB of a ~40 GB drive
// (Section V-C).
const DefaultPerPeerStorage = 10 * units.GB

// SetTopBox models one subscriber's box: a fixed storage contribution to
// the neighborhood cache and a bounded number of concurrent streams in
// either direction. Set-top boxes are always on, so there is no churn.
type SetTopBox struct {
	id         PeerID
	capacity   units.ByteSize
	used       units.ByteSize
	maxStreams int
	active     int
}

// NewSetTopBox returns a box contributing the given storage.
func NewSetTopBox(id PeerID, storage units.ByteSize, maxStreams int) (*SetTopBox, error) {
	if storage < 0 {
		return nil, fmt.Errorf("hfc: negative storage %v", storage)
	}
	if maxStreams <= 0 {
		return nil, fmt.Errorf("hfc: max streams must be positive, got %d", maxStreams)
	}
	return &SetTopBox{id: id, capacity: storage, maxStreams: maxStreams}, nil
}

// ID returns the peer's identifier.
func (s *SetTopBox) ID() PeerID { return s.id }

// StorageCapacity returns the contributed storage.
func (s *SetTopBox) StorageCapacity() units.ByteSize { return s.capacity }

// StorageUsed returns the bytes of cached segments currently stored.
func (s *SetTopBox) StorageUsed() units.ByteSize { return s.used }

// StorageFree returns the free contributed storage.
func (s *SetTopBox) StorageFree() units.ByteSize { return s.capacity - s.used }

// Reserve claims bytes of storage for a cached segment. It reports
// whether the reservation fit.
func (s *SetTopBox) Reserve(bytes units.ByteSize) bool {
	if bytes < 0 {
		panic(fmt.Sprintf("hfc: negative reservation %v", bytes))
	}
	if s.used+bytes > s.capacity {
		return false
	}
	s.used += bytes
	return true
}

// Release frees bytes of storage. Releasing more than is used panics: it
// is always a placement-bookkeeping bug.
func (s *SetTopBox) Release(bytes units.ByteSize) {
	if bytes < 0 || bytes > s.used {
		panic(fmt.Sprintf("hfc: releasing %v with %v used", bytes, s.used))
	}
	s.used -= bytes
}

// SetStorageCapacity re-provisions the box's storage contribution — the
// supply-side disruption hook (node failure takes capacity away,
// restoration and heterogeneous fleets give it back unevenly). The new
// capacity may fall below the bytes currently used; the index server is
// responsible for shedding placed segments until the box fits again.
func (s *SetTopBox) SetStorageCapacity(capacity units.ByteSize) error {
	if capacity < 0 {
		return fmt.Errorf("hfc: negative storage capacity %v", capacity)
	}
	s.capacity = capacity
	return nil
}

// RestoreState forces the box's live accounting to a serialized
// snapshot's values. Restore-time only: the caller must rebuild the
// placements and sessions the counters describe.
func (s *SetTopBox) RestoreState(used units.ByteSize, activeStreams int) error {
	if used < 0 || used > s.capacity {
		return fmt.Errorf("hfc: restore of %v used into %v capacity", used, s.capacity)
	}
	if activeStreams < 0 {
		return fmt.Errorf("hfc: negative active streams %d", activeStreams)
	}
	s.used = used
	s.active = activeStreams
	return nil
}

// ActiveStreams returns the number of streams currently open (sending or
// receiving).
func (s *SetTopBox) ActiveStreams() int { return s.active }

// MaxStreams returns the stream concurrency limit.
func (s *SetTopBox) MaxStreams() int { return s.maxStreams }

// CanStream reports whether another stream may be opened.
func (s *SetTopBox) CanStream() bool { return s.active < s.maxStreams }

// OpenStream claims a stream slot, reporting whether one was available.
// The caller must balance every successful open with CloseStream.
func (s *SetTopBox) OpenStream() bool {
	if !s.CanStream() {
		return false
	}
	s.active++
	return true
}

// ForceOpenStream claims a stream slot unconditionally. It models the
// subscriber's own viewing: the box always serves its own television, so a
// viewer session may push the box past its cooperative limit — the limit
// is enforced against *serving* and *cache-fill* streams via CanStream.
func (s *SetTopBox) ForceOpenStream() {
	s.active++
}

// CloseStream releases a stream slot.
func (s *SetTopBox) CloseStream() {
	if s.active <= 0 {
		panic("hfc: CloseStream without matching OpenStream")
	}
	s.active--
}
