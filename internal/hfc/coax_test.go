package hfc

import (
	"testing"

	"cablevod/internal/units"
)

func TestNewCoaxErrors(t *testing.T) {
	if _, err := NewCoax(0); err == nil {
		t.Error("expected error for zero capacity")
	}
	if _, err := NewCoax(-units.Gbps); err == nil {
		t.Error("expected error for negative capacity")
	}
}

func TestCoaxAdmitRelease(t *testing.T) {
	c, err := NewCoax(20 * units.Mbps)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Admit(units.StreamRate) {
		t.Fatal("first stream refused")
	}
	if !c.Admit(units.StreamRate) {
		t.Fatal("second stream refused")
	}
	// 16.12 of 20 Mb/s used; a third stream exceeds capacity.
	if c.Admit(units.StreamRate) {
		t.Error("admission past capacity")
	}
	if c.Active() != 2 {
		t.Errorf("active = %d, want 2", c.Active())
	}
	if got := c.Utilization(); got < 0.80 || got > 0.81 {
		t.Errorf("utilization = %v, want ~0.806", got)
	}
	c.Release(units.StreamRate)
	if !c.Admit(units.StreamRate) {
		t.Error("capacity not freed")
	}
}

func TestCoaxPeakRate(t *testing.T) {
	c, err := NewCoax(100 * units.Mbps)
	if err != nil {
		t.Fatal(err)
	}
	c.Admit(units.StreamRate)
	c.Admit(units.StreamRate)
	c.Release(units.StreamRate)
	c.Release(units.StreamRate)
	want := 2 * units.StreamRate
	if c.PeakRate() != want {
		t.Errorf("peak = %v, want %v", c.PeakRate(), want)
	}
	if c.Rate() != 0 {
		t.Errorf("rate = %v, want 0", c.Rate())
	}
}

func TestCoaxReleaseUnbalancedPanics(t *testing.T) {
	c, err := NewCoax(100 * units.Mbps)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Release(units.StreamRate)
}

func TestCoaxAdmitZeroRatePanics(t *testing.T) {
	c, err := NewCoax(100 * units.Mbps)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Admit(0)
}

func TestDefaultCoaxCapacity(t *testing.T) {
	if DefaultCoaxCapacity != 3_300*units.Mbps {
		t.Errorf("DefaultCoaxCapacity = %v, want 3.3 Gb/s", DefaultCoaxCapacity)
	}
}
