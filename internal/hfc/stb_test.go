package hfc

import (
	"testing"

	"cablevod/internal/units"
)

func newBox(t *testing.T) *SetTopBox {
	t.Helper()
	b, err := NewSetTopBox(PeerID{}, 10*units.GB, 2)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewSetTopBoxErrors(t *testing.T) {
	if _, err := NewSetTopBox(PeerID{}, -1, 2); err == nil {
		t.Error("expected error for negative storage")
	}
	if _, err := NewSetTopBox(PeerID{}, 1, 0); err == nil {
		t.Error("expected error for zero streams")
	}
}

func TestStorageReserveRelease(t *testing.T) {
	b := newBox(t)
	if !b.Reserve(6 * units.GB) {
		t.Fatal("first reservation failed")
	}
	if b.StorageFree() != 4*units.GB {
		t.Errorf("free = %v, want 4 GB", b.StorageFree())
	}
	if b.Reserve(5 * units.GB) {
		t.Error("over-reservation succeeded")
	}
	if !b.Reserve(4 * units.GB) {
		t.Error("exact-fit reservation failed")
	}
	b.Release(10 * units.GB)
	if b.StorageUsed() != 0 {
		t.Errorf("used = %v after full release", b.StorageUsed())
	}
}

func TestStorageReleaseTooMuchPanics(t *testing.T) {
	b := newBox(t)
	b.Reserve(units.GB)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Release(2 * units.GB)
}

func TestStorageReserveNegativePanics(t *testing.T) {
	b := newBox(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Reserve(-1)
}

func TestStreamSlots(t *testing.T) {
	b := newBox(t)
	if !b.OpenStream() || !b.OpenStream() {
		t.Fatal("first two streams must open")
	}
	if b.CanStream() || b.OpenStream() {
		t.Error("third stream opened past the 2-stream limit")
	}
	b.CloseStream()
	if !b.CanStream() {
		t.Error("slot not freed")
	}
	if b.ActiveStreams() != 1 {
		t.Errorf("active = %d, want 1", b.ActiveStreams())
	}
}

func TestCloseStreamUnbalancedPanics(t *testing.T) {
	b := newBox(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.CloseStream()
}

func TestZeroStorageBox(t *testing.T) {
	b, err := NewSetTopBox(PeerID{}, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b.Reserve(1) {
		t.Error("reservation on zero-storage box succeeded")
	}
	if !b.Reserve(0) {
		t.Error("zero reservation should trivially succeed")
	}
}
