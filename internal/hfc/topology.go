// Package hfc models the Hybrid Fiber-Coax cable plant of Section II: a
// cable operator connected over switched fiber to headends, each headend
// serving a coaxial broadcast neighborhood of subscriber set-top boxes.
//
// The package is purely structural plus bandwidth/storage accounting; the
// cooperative-caching behaviour lives in internal/core on top of it.
package hfc

import (
	"fmt"
	"sort"

	"cablevod/internal/randdist"
	"cablevod/internal/trace"
	"cablevod/internal/units"
)

// PeerID identifies a set-top box as (neighborhood, index within it).
type PeerID struct {
	Neighborhood int
	Index        int
}

// String renders "n3/p17".
func (id PeerID) String() string {
	return fmt.Sprintf("n%d/p%d", id.Neighborhood, id.Index)
}

// Config describes the plant to build.
type Config struct {
	// NeighborhoodSize is the number of subscribers behind one headend.
	// Real deployments range between 100 and 1,000 (Section V-B).
	NeighborhoodSize int

	// PerPeerStorage is each set-top box's cache contribution.
	PerPeerStorage units.ByteSize

	// MaxStreamsPerPeer bounds concurrent streams per box (default 2).
	MaxStreamsPerPeer int

	// CoaxCapacity is the VoD-available bandwidth per neighborhood
	// (default: 6.6 Gb/s downstream minus the 3.3 Gb/s TV share).
	CoaxCapacity units.BitRate

	// PlacementSeed drives the uniform-at-random assignment of users to
	// neighborhoods. The paper keeps placement identical across runs
	// with the same neighborhood size; deriving the seed only from the
	// neighborhood size reproduces that behaviour.
	PlacementSeed uint64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.MaxStreamsPerPeer == 0 {
		c.MaxStreamsPerPeer = DefaultMaxStreams
	}
	if c.CoaxCapacity == 0 {
		c.CoaxCapacity = DefaultCoaxCapacity
	}
	if c.PerPeerStorage == 0 {
		c.PerPeerStorage = DefaultPerPeerStorage
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	c = c.withDefaults()
	switch {
	case c.NeighborhoodSize <= 0:
		return fmt.Errorf("hfc: neighborhood size must be positive, got %d", c.NeighborhoodSize)
	case c.PerPeerStorage < 0:
		return fmt.Errorf("hfc: negative per-peer storage %v", c.PerPeerStorage)
	case c.MaxStreamsPerPeer <= 0:
		return fmt.Errorf("hfc: max streams must be positive, got %d", c.MaxStreamsPerPeer)
	case c.CoaxCapacity <= 0:
		return fmt.Errorf("hfc: coax capacity must be positive, got %v", c.CoaxCapacity)
	default:
		return nil
	}
}

// Neighborhood is one coaxial segment: a headend, its subscriber boxes,
// and the shared broadcast channel.
type Neighborhood struct {
	id    int
	peers []*SetTopBox
	coax  *Coax
	// users maps each subscriber (trace user) to their box index.
	users map[trace.UserID]int
	// homeIdx/peerIdx are the topology-wide dense lookup tables (shared
	// across neighborhoods), present only for dense subscriber
	// populations — see Topology.homeIdx.
	homeIdx []int32
	peerIdx []int32
}

// ID returns the neighborhood index.
func (n *Neighborhood) ID() int { return n.id }

// Size returns the number of subscriber boxes.
func (n *Neighborhood) Size() int { return len(n.peers) }

// Coax returns the shared broadcast channel.
func (n *Neighborhood) Coax() *Coax { return n.coax }

// Peer returns the i-th set-top box.
func (n *Neighborhood) Peer(i int) *SetTopBox { return n.peers[i] }

// Peers returns all boxes (shared slice; do not mutate).
func (n *Neighborhood) Peers() []*SetTopBox { return n.peers }

// PeerOf returns the box of the given subscriber.
func (n *Neighborhood) PeerOf(u trace.UserID) (*SetTopBox, bool) {
	if n.homeIdx != nil {
		if u < 0 || int(u) >= len(n.homeIdx) || n.homeIdx[u] != int32(n.id) {
			return nil, false
		}
		return n.peers[n.peerIdx[u]], true
	}
	i, ok := n.users[u]
	if !ok {
		return nil, false
	}
	return n.peers[i], true
}

// Users returns the subscribers homed in this neighborhood, sorted.
func (n *Neighborhood) Users() []trace.UserID {
	out := make([]trace.UserID, 0, len(n.users))
	for u := range n.users {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TotalCacheCapacity returns the pooled storage of all boxes — what the
// index server understands the total cache size to be (Section IV-B.3).
func (n *Neighborhood) TotalCacheCapacity() units.ByteSize {
	var total units.ByteSize
	for _, p := range n.peers {
		total += p.StorageCapacity()
	}
	return total
}

// Topology is the full plant: every neighborhood plus the user homing map.
type Topology struct {
	cfg           Config
	neighborhoods []*Neighborhood
	home          map[trace.UserID]int
	// homeIdx/peerIdx are dense homing tables, built when the subscriber
	// population is exactly 0..n-1 (what synth traces and universe tiers
	// generate): homeIdx[u] is u's neighborhood and peerIdx[u] the box
	// index within it. Homing runs three times per submitted record, so
	// the dense path replaces the hottest map lookups of the ingest loop
	// with two array reads. nil for sparse populations.
	homeIdx []int32
	peerIdx []int32
}

// Build constructs the plant for the given subscriber population,
// assigning users to fixed-size neighborhoods uniformly at random
// (deterministically per config, Section V-B).
func Build(cfg Config, usersList []trace.UserID) (*Topology, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(usersList) == 0 {
		return nil, fmt.Errorf("hfc: no subscribers to place")
	}

	// Deterministic shuffle: seed depends on the placement seed and the
	// neighborhood size only, so equal-size runs share placement.
	shuffled := append([]trace.UserID(nil), usersList...)
	sort.Slice(shuffled, func(i, j int) bool { return shuffled[i] < shuffled[j] })
	rng := randdist.NewRNG(cfg.PlacementSeed, uint64(cfg.NeighborhoodSize))
	rng.Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})

	count := (len(shuffled) + cfg.NeighborhoodSize - 1) / cfg.NeighborhoodSize
	topo := &Topology{
		cfg:           cfg,
		neighborhoods: make([]*Neighborhood, 0, count),
		home:          make(map[trace.UserID]int, len(shuffled)),
	}
	for ni := 0; ni < count; ni++ {
		lo := ni * cfg.NeighborhoodSize
		hi := lo + cfg.NeighborhoodSize
		if hi > len(shuffled) {
			hi = len(shuffled)
		}
		members := shuffled[lo:hi]
		coax, err := NewCoax(cfg.CoaxCapacity)
		if err != nil {
			return nil, err
		}
		nb := &Neighborhood{
			id:    ni,
			peers: make([]*SetTopBox, 0, len(members)),
			coax:  coax,
			users: make(map[trace.UserID]int, len(members)),
		}
		for pi, u := range members {
			box, err := NewSetTopBox(PeerID{Neighborhood: ni, Index: pi}, cfg.PerPeerStorage, cfg.MaxStreamsPerPeer)
			if err != nil {
				return nil, err
			}
			nb.peers = append(nb.peers, box)
			nb.users[u] = pi
			topo.home[u] = ni
		}
		topo.neighborhoods = append(topo.neighborhoods, nb)
	}
	topo.buildDenseHoming()
	return topo, nil
}

// buildDenseHoming flattens the homing maps into arrays when subscriber
// IDs are small non-negative integers (synth traces and universe tiers
// number users from zero; real traces may be sparse within that range).
// Absent IDs hold -1. The tables are shared by the topology and every
// neighborhood, so the cost is eight bytes per ID once, not per shard.
// Populations with IDs far beyond their count keep the map path rather
// than pay for mostly-empty tables.
func (t *Topology) buildDenseHoming() {
	n := len(t.home)
	max := trace.UserID(-1)
	for u := range t.home {
		if u < 0 || int64(u) >= 4*int64(n) {
			return
		}
		if u > max {
			max = u
		}
	}
	t.homeIdx = make([]int32, int(max)+1)
	t.peerIdx = make([]int32, int(max)+1)
	for i := range t.homeIdx {
		t.homeIdx[i] = -1
	}
	for _, nb := range t.neighborhoods {
		for u, pi := range nb.users {
			t.homeIdx[u] = int32(nb.id)
			t.peerIdx[u] = int32(pi)
		}
		nb.homeIdx = t.homeIdx
		nb.peerIdx = t.peerIdx
	}
}

// Config returns the (defaulted) configuration the plant was built with.
func (t *Topology) Config() Config { return t.cfg }

// Neighborhoods returns all neighborhoods (shared slice; do not mutate).
func (t *Topology) Neighborhoods() []*Neighborhood { return t.neighborhoods }

// NeighborhoodCount returns the number of headends.
func (t *Topology) NeighborhoodCount() int { return len(t.neighborhoods) }

// Home returns the neighborhood of a subscriber.
func (t *Topology) Home(u trace.UserID) (*Neighborhood, bool) {
	if t.homeIdx != nil {
		if u < 0 || int(u) >= len(t.homeIdx) || t.homeIdx[u] < 0 {
			return nil, false
		}
		return t.neighborhoods[t.homeIdx[u]], true
	}
	ni, ok := t.home[u]
	if !ok {
		return nil, false
	}
	return t.neighborhoods[ni], true
}

// Subscribers returns the total subscriber count.
func (t *Topology) Subscribers() int { return len(t.home) }
