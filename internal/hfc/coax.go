package hfc

import (
	"fmt"

	"cablevod/internal/units"
)

// Coax models the shared broadcast medium of one neighborhood. Every
// VoD stream — whether sourced by a peer or by the headend — is broadcast
// to the whole neighborhood and consumes the same channel bandwidth
// (Section VI-B), so the model is a single pool of concurrent streams
// against the capacity left over after broadcast television.
//
// The paper's feasibility analysis assumes bidirectional amplifiers, so
// peer-sourced broadcasts share the same spectrum accounting.
type Coax struct {
	capacity units.BitRate
	rate     units.BitRate
	active   int
	// peak tracks the maximum concurrent rate ever observed, for
	// feasibility reporting.
	peak units.BitRate
}

// DefaultCoaxCapacity is the bandwidth available to VoD on the coaxial
// line: the top of the downstream range (6.6 Gb/s) minus the ~3.3 Gb/s
// consumed by broadcast cable television.
const DefaultCoaxCapacity = units.CoaxDownstreamMax - units.CoaxTelevisionShare

// NewCoax returns a coax channel with the given VoD-available capacity.
func NewCoax(capacity units.BitRate) (*Coax, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("hfc: coax capacity must be positive, got %v", capacity)
	}
	return &Coax{capacity: capacity}, nil
}

// Capacity returns the VoD-available capacity.
func (c *Coax) Capacity() units.BitRate { return c.capacity }

// Rate returns the aggregate rate of active streams.
func (c *Coax) Rate() units.BitRate { return c.rate }

// Active returns the number of active streams.
func (c *Coax) Active() int { return c.active }

// PeakRate returns the maximum concurrent rate observed so far.
func (c *Coax) PeakRate() units.BitRate { return c.peak }

// Utilization returns Rate/Capacity in [0, ...].
func (c *Coax) Utilization() float64 {
	return float64(c.rate) / float64(c.capacity)
}

// Admit opens a broadcast stream of the given rate, reporting whether the
// channel had capacity. Every successful Admit must be balanced by a
// Release of the same rate.
func (c *Coax) Admit(rate units.BitRate) bool {
	if rate <= 0 {
		panic(fmt.Sprintf("hfc: non-positive stream rate %v", rate))
	}
	if c.rate+rate > c.capacity {
		return false
	}
	c.rate += rate
	c.active++
	if c.rate > c.peak {
		c.peak = c.rate
	}
	return true
}

// SetCapacity re-provisions the VoD-available bandwidth — the coax
// degradation hook. In-flight broadcasts are not torn down: the rate may
// exceed a lowered capacity until streams drain; only new admissions see
// the new limit.
func (c *Coax) SetCapacity(capacity units.BitRate) error {
	if capacity <= 0 {
		return fmt.Errorf("hfc: coax capacity must be positive, got %v", capacity)
	}
	c.capacity = capacity
	return nil
}

// RestoreState forces the channel's live accounting to a serialized
// snapshot's values. Restore-time only: the caller must rebuild the
// in-flight broadcast release events the counters describe.
func (c *Coax) RestoreState(rate units.BitRate, active int, peak units.BitRate) error {
	if rate < 0 || active < 0 || (rate > 0 && active == 0) {
		return fmt.Errorf("hfc: restore of rate %v over %d streams", rate, active)
	}
	if peak < rate {
		return fmt.Errorf("hfc: restore peak %v below rate %v", peak, rate)
	}
	c.rate, c.active, c.peak = rate, active, peak
	return nil
}

// Release closes a broadcast stream of the given rate.
func (c *Coax) Release(rate units.BitRate) {
	if rate <= 0 || rate > c.rate || c.active <= 0 {
		panic(fmt.Sprintf("hfc: releasing %v with %v active over %d streams", rate, c.rate, c.active))
	}
	c.rate -= rate
	c.active--
}
