package hfc

import (
	"testing"

	"cablevod/internal/trace"
	"cablevod/internal/units"
)

func userRange(n int) []trace.UserID {
	out := make([]trace.UserID, n)
	for i := range out {
		out[i] = trace.UserID(i)
	}
	return out
}

func TestBuildPartitionsAllUsers(t *testing.T) {
	topo, err := Build(Config{NeighborhoodSize: 100}, userRange(1050))
	if err != nil {
		t.Fatal(err)
	}
	if got := topo.NeighborhoodCount(); got != 11 {
		t.Errorf("neighborhoods = %d, want 11", got)
	}
	if topo.Subscribers() != 1050 {
		t.Errorf("subscribers = %d, want 1050", topo.Subscribers())
	}
	// Every user homed exactly once, boxes created per user.
	seen := 0
	for _, nb := range topo.Neighborhoods() {
		seen += nb.Size()
		if nb.Size() > 100 {
			t.Errorf("neighborhood %d has %d peers, want <= 100", nb.ID(), nb.Size())
		}
		for _, u := range nb.Users() {
			home, ok := topo.Home(u)
			if !ok || home.ID() != nb.ID() {
				t.Fatalf("user %d homing inconsistent", u)
			}
			if _, ok := nb.PeerOf(u); !ok {
				t.Fatalf("user %d has no box", u)
			}
		}
	}
	if seen != 1050 {
		t.Errorf("boxes = %d, want 1050", seen)
	}
}

func TestBuildDeterministicPerSize(t *testing.T) {
	users := userRange(500)
	a, err := Build(Config{NeighborhoodSize: 100}, users)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(Config{NeighborhoodSize: 100}, users)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range users {
		na, _ := a.Home(u)
		nb, _ := b.Home(u)
		if na.ID() != nb.ID() {
			t.Fatalf("user %d placed differently across identical builds", u)
		}
	}
	// A different size produces a different (but still deterministic)
	// placement.
	c, err := Build(Config{NeighborhoodSize: 250}, users)
	if err != nil {
		t.Fatal(err)
	}
	if c.NeighborhoodCount() != 2 {
		t.Errorf("neighborhoods = %d, want 2", c.NeighborhoodCount())
	}
}

func TestBuildDefaults(t *testing.T) {
	topo, err := Build(Config{NeighborhoodSize: 10}, userRange(10))
	if err != nil {
		t.Fatal(err)
	}
	cfg := topo.Config()
	if cfg.MaxStreamsPerPeer != DefaultMaxStreams {
		t.Errorf("MaxStreamsPerPeer = %d", cfg.MaxStreamsPerPeer)
	}
	if cfg.CoaxCapacity != DefaultCoaxCapacity {
		t.Errorf("CoaxCapacity = %v", cfg.CoaxCapacity)
	}
	if cfg.PerPeerStorage != DefaultPerPeerStorage {
		t.Errorf("PerPeerStorage = %v", cfg.PerPeerStorage)
	}
	nb := topo.Neighborhoods()[0]
	if got := nb.TotalCacheCapacity(); got != 100*units.GB {
		t.Errorf("TotalCacheCapacity = %v, want 100 GB", got)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(Config{NeighborhoodSize: 0}, userRange(5)); err == nil {
		t.Error("expected error for zero neighborhood size")
	}
	if _, err := Build(Config{NeighborhoodSize: 10}, nil); err == nil {
		t.Error("expected error for empty population")
	}
	if _, err := Build(Config{NeighborhoodSize: 10, PerPeerStorage: -1}, userRange(5)); err == nil {
		t.Error("expected error for negative storage")
	}
}

func TestHomeUnknownUser(t *testing.T) {
	topo, err := Build(Config{NeighborhoodSize: 10}, userRange(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := topo.Home(999); ok {
		t.Error("unknown user reported as homed")
	}
	nb := topo.Neighborhoods()[0]
	if _, ok := nb.PeerOf(999); ok {
		t.Error("unknown user has a box")
	}
}

func TestPeerIDString(t *testing.T) {
	id := PeerID{Neighborhood: 3, Index: 17}
	if got := id.String(); got != "n3/p17" {
		t.Errorf("String() = %q", got)
	}
}

func TestPlacementRoughlyUniform(t *testing.T) {
	// With 10k users in 10 neighborhoods of 1000, every neighborhood is
	// exactly full; check users are spread (not sorted runs).
	topo, err := Build(Config{NeighborhoodSize: 1000}, userRange(10_000))
	if err != nil {
		t.Fatal(err)
	}
	nb := topo.Neighborhoods()[0]
	users := nb.Users()
	// If placement were identity order, users would be 0..999. Shuffled
	// placement should include high IDs.
	high := 0
	for _, u := range users {
		if u >= 5000 {
			high++
		}
	}
	if high < 300 || high > 700 {
		t.Errorf("neighborhood 0 has %d/1000 users from the top half, want ~500", high)
	}
}
