package popularity

import (
	"fmt"
	"time"

	"cablevod/internal/trace"
)

// Global aggregates access counts across every neighborhood in the system
// and publishes them to index servers, modelling the Figure-13 experiment:
//
//   - Lag 0: index servers see live global counts for every decision.
//   - Lag > 0: counts are published in batches; between publications the
//     servers see the last published snapshot (the "30 minute lag" and
//     "2 hour lag" bars).
type Global struct {
	window      *Window
	lag         time.Duration
	published   map[trace.ProgramID]int
	nextPublish time.Duration
}

// NewGlobal returns a global aggregator with the given history horizon and
// publication lag.
func NewGlobal(horizon, lag time.Duration) *Global {
	if lag < 0 {
		panic(fmt.Sprintf("popularity: negative lag %v", lag))
	}
	return &Global{
		window:      NewWindow(horizon),
		lag:         lag,
		published:   make(map[trace.ProgramID]int),
		nextPublish: lag,
	}
}

// Record notes an access from any neighborhood at time now.
func (g *Global) Record(p trace.ProgramID, now time.Duration) {
	g.window.Record(p, now)
	g.maybePublish(now)
}

// Count returns the globally aggregated access count visible to an index
// server at time now.
func (g *Global) Count(p trace.ProgramID, now time.Duration) int {
	if g.lag == 0 {
		return g.window.Count(p, now)
	}
	g.maybePublish(now)
	return g.published[p]
}

func (g *Global) maybePublish(now time.Duration) {
	if g.lag == 0 || now < g.nextPublish {
		return
	}
	g.published = g.window.Snapshot(now)
	// Publish on fixed boundaries so quiet periods don't drift the
	// schedule.
	for g.nextPublish <= now {
		g.nextPublish += g.lag
	}
}
