// Package popularity implements the access-frequency machinery behind the
// paper's LFU strategy: sliding-window access counters (the "history of all
// events that occur within the last N hours", Section IV-B.2), a global
// aggregator with batched propagation lag (the Figure-13 variants), and the
// introduction-decay analysis of Figure 12.
package popularity

import (
	"fmt"
	"time"

	"cablevod/internal/trace"
)

type event struct {
	program trace.ProgramID
	at      time.Duration
}

// Window counts program accesses within a sliding horizon. A zero horizon
// means "remember nothing": every count is zero, which degenerates LFU into
// LRU exactly as the paper notes for history size 0.
type Window struct {
	horizon time.Duration
	events  []event
	head    int
	counts  map[trace.ProgramID]int
}

// NewWindow returns a window with the given horizon. Horizon must be >= 0.
func NewWindow(horizon time.Duration) *Window {
	if horizon < 0 {
		panic(fmt.Sprintf("popularity: negative horizon %v", horizon))
	}
	return &Window{
		horizon: horizon,
		counts:  make(map[trace.ProgramID]int),
	}
}

// Horizon returns the window length.
func (w *Window) Horizon() time.Duration { return w.horizon }

// Record notes an access to p at time now. Accesses must be recorded in
// non-decreasing time order.
func (w *Window) Record(p trace.ProgramID, now time.Duration) {
	if w.horizon == 0 {
		return
	}
	if n := len(w.events); n > w.head && w.events[n-1].at > now {
		panic(fmt.Sprintf("popularity: out-of-order access at %v after %v", now, w.events[n-1].at))
	}
	w.events = append(w.events, event{program: p, at: now})
	w.counts[p]++
	w.Advance(now)
}

// Advance prunes accesses older than now-horizon.
func (w *Window) Advance(now time.Duration) {
	cutoff := now - w.horizon
	for w.head < len(w.events) && w.events[w.head].at < cutoff {
		e := w.events[w.head]
		w.counts[e.program]--
		if w.counts[e.program] == 0 {
			delete(w.counts, e.program)
		}
		w.head++
	}
	// Compact the backing array once the dead prefix dominates.
	if w.head > 1024 && w.head*2 > len(w.events) {
		n := copy(w.events, w.events[w.head:])
		w.events = w.events[:n]
		w.head = 0
	}
}

// Count returns the number of accesses to p within the horizon ending at
// now.
func (w *Window) Count(p trace.ProgramID, now time.Duration) int {
	w.Advance(now)
	return w.counts[p]
}

// Len returns the number of accesses currently inside the window.
func (w *Window) Len() int { return len(w.events) - w.head }

// Snapshot returns a copy of the current per-program counts as of now.
func (w *Window) Snapshot(now time.Duration) map[trace.ProgramID]int {
	w.Advance(now)
	out := make(map[trace.ProgramID]int, len(w.counts))
	for p, c := range w.counts {
		out[p] = c
	}
	return out
}
