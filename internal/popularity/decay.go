package popularity

import (
	"time"

	"cablevod/internal/trace"
	"cablevod/internal/units"
)

// IntroductionDecay computes the Figure-12 series: the average number of
// concurrent sessions for the most popular programs, by day since each
// program's introduction (its first access in the trace).
//
// A program's first access only approximates its introduction when it
// happened well inside the trace window: programs already in the catalog
// at the start of the trace have their first access at trace-day 0 even
// though they may be months old. minIntro excludes those — only programs
// first accessed at or after minIntro contribute to the series.
//
// topN selects how many of the most-accessed qualifying programs to
// average over; days is the length of the returned series. Programs
// introduced too close to the end of the trace to observe a full aligned
// day are excluded from that day's average.
func IntroductionDecay(tr *trace.Trace, topN, days int, minIntro time.Duration) []float64 {
	if days <= 0 {
		return nil
	}
	first := tr.FirstAccess()
	_, traceEnd := tr.Span()
	top := tr.MostPopular(len(first))

	sums := make([]float64, days)
	counts := make([]int, days)
	taken := 0
	for _, p := range top {
		if taken >= topN {
			break
		}
		intro, ok := first[p]
		if !ok || intro < minIntro {
			continue
		}
		taken++
		// Align the program's viewing to days since introduction.
		perDay := make([]float64, days)
		for _, r := range tr.FilterProgram(p) {
			from, to := r.Start, r.End()
			for from < to {
				dayIdx := int((from - intro) / units.Day)
				dayEnd := intro + time.Duration(dayIdx+1)*units.Day
				if dayEnd > to {
					dayEnd = to
				}
				if dayIdx >= 0 && dayIdx < days {
					perDay[dayIdx] += (dayEnd - from).Seconds()
				}
				from = dayEnd
			}
		}
		for d := 0; d < days; d++ {
			// Only count days fully inside the trace.
			if intro+time.Duration(d+1)*units.Day > traceEnd {
				break
			}
			sums[d] += perDay[d] / units.Day.Seconds()
			counts[d]++
		}
	}
	out := make([]float64, days)
	for d := range out {
		if counts[d] > 0 {
			out[d] = sums[d] / float64(counts[d])
		}
	}
	return out
}
