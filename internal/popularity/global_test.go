package popularity

import (
	"testing"
	"time"

	"cablevod/internal/trace"
	"cablevod/internal/units"
)

func int32ID(v uint8) trace.ProgramID { return trace.ProgramID(v) }

func TestGlobalLiveWhenLagZero(t *testing.T) {
	g := NewGlobal(24*time.Hour, 0)
	g.Record(1, time.Minute)
	if got := g.Count(1, time.Minute); got != 1 {
		t.Errorf("live count = %d, want 1", got)
	}
	g.Record(1, 2*time.Minute)
	if got := g.Count(1, 2*time.Minute); got != 2 {
		t.Errorf("live count = %d, want 2", got)
	}
}

func TestGlobalLagBatchesUpdates(t *testing.T) {
	g := NewGlobal(24*time.Hour, 30*time.Minute)
	g.Record(1, time.Minute)
	// Before the first publication boundary nothing is visible.
	if got := g.Count(1, 10*time.Minute); got != 0 {
		t.Errorf("pre-publication count = %d, want 0", got)
	}
	// The 30-minute boundary publishes everything recorded so far.
	if got := g.Count(1, 31*time.Minute); got != 1 {
		t.Errorf("post-publication count = %d, want 1", got)
	}
	// New accesses stay invisible until the next boundary.
	g.Record(1, 40*time.Minute)
	if got := g.Count(1, 45*time.Minute); got != 1 {
		t.Errorf("mid-batch count = %d, want 1", got)
	}
	if got := g.Count(1, 61*time.Minute); got != 2 {
		t.Errorf("second publication count = %d, want 2", got)
	}
}

func TestGlobalPublicationOnRecord(t *testing.T) {
	g := NewGlobal(24*time.Hour, time.Hour)
	g.Record(1, 10*time.Minute)
	// Recording after the boundary also triggers publication.
	g.Record(2, 90*time.Minute)
	if got := g.Count(1, 90*time.Minute); got != 1 {
		t.Errorf("count = %d, want 1", got)
	}
}

func TestGlobalHorizonApplies(t *testing.T) {
	g := NewGlobal(time.Hour, 0)
	g.Record(1, 0)
	if got := g.Count(1, 2*time.Hour); got != 0 {
		t.Errorf("expired count = %d, want 0", got)
	}
}

func TestGlobalNegativeLagPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGlobal(time.Hour, -time.Minute)
}

func TestIntroductionDecay(t *testing.T) {
	tr := trace.New()
	// Program 1 introduced at day 1, heavily watched on day 1, less later:
	// 12 hours of total viewing on relative day 0, 6 on day 1, 3 on day 2.
	add := func(start, dur time.Duration) {
		tr.Append(trace.Record{User: 1, Program: 1, Start: start, Duration: dur})
	}
	intro := units.At(1, 0)
	add(intro, 12*time.Hour)
	add(intro+units.Day, 6*time.Hour)
	add(intro+2*units.Day, 3*time.Hour)
	// Pad the trace span past relative day 2 so all days count.
	tr.Append(trace.Record{User: 2, Program: 2, Start: units.At(5, 0), Duration: time.Hour})
	tr.Sort()

	got := IntroductionDecay(tr, 1, 3, 0)
	want := []float64{0.5, 0.25, 0.125}
	for i := range want {
		if diff := got[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("day %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestIntroductionDecayExcludesTruncatedDays(t *testing.T) {
	tr := trace.New()
	// Introduced half a day before trace end: day 0 incomplete.
	tr.Append(trace.Record{User: 1, Program: 1, Start: 0, Duration: 12 * time.Hour})
	tr.Sort()
	got := IntroductionDecay(tr, 1, 2, 0)
	for d, v := range got {
		if v != 0 {
			t.Errorf("day %d = %v, want 0 (no complete aligned days)", d, v)
		}
	}
}

func TestIntroductionDecayEmpty(t *testing.T) {
	if got := IntroductionDecay(trace.New(), 5, 0, 0); got != nil {
		t.Error("expected nil for zero days")
	}
	got := IntroductionDecay(trace.New(), 5, 3, 0)
	for _, v := range got {
		if v != 0 {
			t.Error("expected zeros for empty trace")
		}
	}
}
