package popularity

import (
	"testing"
	"testing/quick"
	"time"
)

func TestWindowCounts(t *testing.T) {
	w := NewWindow(time.Hour)
	w.Record(1, 0)
	w.Record(1, 10*time.Minute)
	w.Record(2, 20*time.Minute)
	if got := w.Count(1, 30*time.Minute); got != 2 {
		t.Errorf("Count(1) = %d, want 2", got)
	}
	if got := w.Count(2, 30*time.Minute); got != 1 {
		t.Errorf("Count(2) = %d, want 1", got)
	}
	if got := w.Count(3, 30*time.Minute); got != 0 {
		t.Errorf("Count(3) = %d, want 0", got)
	}
}

func TestWindowExpiry(t *testing.T) {
	w := NewWindow(time.Hour)
	w.Record(1, 0)
	w.Record(1, 30*time.Minute)
	if got := w.Count(1, 59*time.Minute); got != 2 {
		t.Errorf("before expiry Count = %d, want 2", got)
	}
	// At t=61m the t=0 access is outside [1m, 61m].
	if got := w.Count(1, 61*time.Minute); got != 1 {
		t.Errorf("after expiry Count = %d, want 1", got)
	}
	if got := w.Count(1, 2*time.Hour); got != 0 {
		t.Errorf("all expired Count = %d, want 0", got)
	}
	if w.Len() != 0 {
		t.Errorf("Len() = %d, want 0", w.Len())
	}
}

func TestWindowBoundaryInclusive(t *testing.T) {
	w := NewWindow(time.Hour)
	w.Record(1, 0)
	// Exactly horizon old: cutoff is now-horizon and events at the cutoff
	// are retained (strictly-older prune).
	if got := w.Count(1, time.Hour); got != 1 {
		t.Errorf("Count at exact horizon = %d, want 1", got)
	}
}

func TestZeroHorizonRemembersNothing(t *testing.T) {
	w := NewWindow(0)
	w.Record(1, time.Minute)
	w.Record(1, 2*time.Minute)
	if got := w.Count(1, 2*time.Minute); got != 0 {
		t.Errorf("zero-horizon Count = %d, want 0", got)
	}
	if w.Len() != 0 {
		t.Errorf("zero-horizon Len = %d, want 0", w.Len())
	}
}

func TestWindowOutOfOrderPanics(t *testing.T) {
	w := NewWindow(time.Hour)
	w.Record(1, time.Minute)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-order record")
		}
	}()
	w.Record(2, 0)
}

func TestNegativeHorizonPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWindow(-time.Second)
}

func TestWindowCompaction(t *testing.T) {
	w := NewWindow(time.Minute)
	// Push enough expiring events to trigger compaction.
	for i := 0; i < 10_000; i++ {
		w.Record(1, time.Duration(i)*time.Second)
	}
	if got := w.Count(1, 10_000*time.Second); got != 60 {
		t.Errorf("Count after compaction churn = %d, want 60", got)
	}
	if w.head > len(w.events) {
		t.Error("head beyond events after compaction")
	}
}

func TestWindowSnapshotIsCopy(t *testing.T) {
	w := NewWindow(time.Hour)
	w.Record(1, 0)
	snap := w.Snapshot(0)
	snap[1] = 99
	if got := w.Count(1, 0); got != 1 {
		t.Errorf("snapshot mutation leaked: Count = %d", got)
	}
}

func TestWindowCountNeverNegative(t *testing.T) {
	f := func(times []uint16) bool {
		w := NewWindow(30 * time.Minute)
		last := time.Duration(0)
		for _, raw := range times {
			at := last + time.Duration(raw%100)*time.Second
			last = at
			w.Record(1, at)
			if w.Count(1, at) < 0 || w.Len() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWindowLenMatchesSumOfCounts(t *testing.T) {
	f := func(progs []uint8) bool {
		w := NewWindow(time.Hour)
		for i, p := range progs {
			w.Record(1+int32ID(p%5), time.Duration(i)*time.Second)
		}
		now := time.Duration(len(progs)) * time.Second
		snap := w.Snapshot(now)
		sum := 0
		for _, c := range snap {
			sum += c
		}
		return sum == w.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
