package cablevod

import (
	"fmt"
	"time"

	"cablevod/internal/scenario"
	"cablevod/internal/scenario/spec"
)

// ScenarioInfo describes one registered workload scenario.
type ScenarioInfo struct {
	// Name is the registry key, accepted by RunScenario and
	// `vodsim -scenario`.
	Name string
	// Description says what the scenario stresses.
	Description string
}

// ListScenarios enumerates every registered workload scenario, sorted
// by name. The built-ins cover a flash crowd, a catalog premiere, a
// subscriber churn wave, a weekend/evening intensity surge, and
// rotating regional popularity drift; see SCENARIOS.md for each one's
// knobs and the question it answers.
func ListScenarios() []ScenarioInfo {
	var out []ScenarioInfo
	for _, b := range scenario.Builders() {
		out = append(out, ScenarioInfo{Name: b.Name, Description: b.Description})
	}
	return out
}

// ScenarioCheckpoint is one mid-scenario measurement emitted by the
// driver: live engine Metrics at a virtual instant, labelled with the
// scenario phases active there.
type ScenarioCheckpoint = scenario.Checkpoint

// ScenarioOptions configures a RunScenario call.
type ScenarioOptions struct {
	// Workload sizes the scenario's base synthetic workload
	// (population, catalog, days, seed). The zero value uses
	// DefaultTraceOptions, the paper-calibrated PowerInfo shape;
	// anything else must be a complete configuration (start from
	// DefaultTraceOptions and override fields) — a partially filled
	// one is rejected rather than silently completed.
	Workload TraceOptions

	// Chunk is the virtual-time window of records ingested per
	// SubmitBatch (0 = one day). Results are bit-identical at every
	// chunking; smaller chunks only give fresher checkpoints.
	Chunk time.Duration

	// Checkpoint emits a ScenarioCheckpoint every this much virtual
	// time (0 = none).
	Checkpoint time.Duration

	// OnCheckpoint observes checkpoints as they are taken; the full
	// series is also returned by RunScenario.
	OnCheckpoint func(ScenarioCheckpoint)

	// Acceleration rate-limits the virtual clock to at most this many
	// virtual seconds per wall-clock second (0 = as fast as the
	// hardware allows). 86400 plays one simulated day per real second.
	Acceleration float64

	// SnapshotAt requests one mid-run state export at the first hour
	// boundary at or after this virtual time (0 = none) — the warm
	// state fork comparisons branch from. Requires OnSnapshot.
	SnapshotAt time.Duration

	// OnSnapshot receives the mid-run export; an error aborts the run.
	OnSnapshot func(*SystemState) error

	// SnapshotFuture embeds the scenario's complete materialized record
	// stream in the snapshot, making the saved state self-contained:
	// FutureTail then yields exactly the records still to come, so
	// RunForks can replay the rest of the scenario from the snapshot
	// alone.
	SnapshotFuture bool
}

// RunScenario streams a registered scenario's lazily generated live
// workload through the online System engine: the scenario's population
// and catalog provision the plant, records are generated hour by hour
// (never pre-materialized), ingested through SubmitBatch in chunks, and
// periodic Snapshot-based checkpoints let strategies be compared
// mid-scenario — during the flash crowd, not just after it.
//
// cfg configures the engine exactly as for New; its Subscribers,
// Catalog, and Future fields are ignored (the scenario supplies the
// population and catalog, and a live scenario has no future, so offline
// strategies like Oracle are rejected). Results are deterministic for a
// given scenario, workload, and engine configuration, bit-identical at
// every Config.Parallelism.
func RunScenario(name string, cfg Config, opts ScenarioOptions) (*Result, []ScenarioCheckpoint, error) {
	b, err := scenario.Lookup(name)
	if err != nil {
		return nil, nil, err
	}
	base := opts.Workload
	if zeroWorkload(base) {
		base = DefaultTraceOptions()
	}
	if cfg.Subscribers != nil || cfg.Catalog != nil || cfg.Future != nil {
		return nil, nil, fmt.Errorf("cablevod: RunScenario derives Subscribers/Catalog from the scenario; leave them unset")
	}
	d, err := scenario.NewDriver(cfg.internal(), b.Build(base), scenario.Options{
		Chunk:          opts.Chunk,
		Checkpoint:     opts.Checkpoint,
		OnCheckpoint:   opts.OnCheckpoint,
		Acceleration:   opts.Acceleration,
		SnapshotAt:     opts.SnapshotAt,
		OnSnapshot:     opts.OnSnapshot,
		SnapshotFuture: opts.SnapshotFuture,
	})
	if err != nil {
		return nil, nil, err
	}
	res, err := d.Run()
	if err != nil {
		return nil, nil, err
	}
	return res, d.Checkpoints(), nil
}

// SpecReport is the outcome of a declarative scenario-spec run: the
// engine result, the checkpoint series with its execution trace, and
// one verdict per assertion. Render writes the human-readable pass/fail
// report; Pass and FirstFailure summarize it programmatically.
type SpecReport = spec.Report

// SpecRunOptions configures a RunSpecFile call. The spec file itself
// pins the workload, the phase timeline, and (usually) the engine and
// checkpoint cadence; these options fill what the spec leaves open.
type SpecRunOptions struct {
	// Checkpoint is the fallback cadence when the spec sets none. A
	// spec with assertions must resolve to a positive cadence — running
	// its temporal predicates over zero checkpoints is an error, never
	// a silent pass.
	Checkpoint time.Duration

	// Chunk is the fallback SubmitBatch ingest window (0 = one day).
	Chunk time.Duration

	// OnCheckpoint observes checkpoints as they are taken.
	OnCheckpoint func(ScenarioCheckpoint)

	// Acceleration rate-limits the virtual clock, exactly as in
	// ScenarioOptions.
	Acceleration float64

	// SnapshotAt, OnSnapshot and SnapshotFuture request a mid-run state
	// export, exactly as in ScenarioOptions.
	SnapshotAt     time.Duration
	OnSnapshot     func(*SystemState) error
	SnapshotFuture bool
}

// RunSpecFile loads a declarative scenario spec (YAML or JSON; see
// SCENARIOS.md for the schema), runs it through the live engine, and
// evaluates its assert block against the checkpoint series. The spec's
// engine block overrides cfg field by field, so a checked-in spec pins
// the knobs its assertions depend on while the caller keeps the rest
// (Parallelism above all — results are bit-identical at every width).
//
// The returned report is complete even when assertions fail; check
// report.Pass(). The error is non-nil only when the run itself cannot
// proceed (unreadable spec, validation failure, engine error, or a spec
// with assertions but no checkpoint cadence).
func RunSpecFile(path string, cfg Config, opts SpecRunOptions) (*SpecReport, error) {
	if cfg.Subscribers != nil || cfg.Catalog != nil || cfg.Future != nil {
		return nil, fmt.Errorf("cablevod: RunSpecFile derives Subscribers/Catalog from the spec; leave them unset")
	}
	return spec.RunFile(path, spec.RunOptions{
		Engine:         cfg.internal(),
		Checkpoint:     opts.Checkpoint,
		Chunk:          opts.Chunk,
		OnCheckpoint:   opts.OnCheckpoint,
		Acceleration:   opts.Acceleration,
		SnapshotAt:     opts.SnapshotAt,
		OnSnapshot:     opts.OnSnapshot,
		SnapshotFuture: opts.SnapshotFuture,
	})
}

// zeroWorkload reports whether a TraceOptions is the zero value, so
// RunScenario substitutes the defaults only for a wholly unset
// workload — never for a partially filled one (whose missing fields the
// spec validation then rejects explicitly).
func zeroWorkload(o TraceOptions) bool {
	return o.Users == 0 && o.Programs == 0 && o.Days == 0 && o.Seed == 0 &&
		o.SessionsPerUserDay == 0 && o.LengthsMinutes == nil && o.LengthWeights == nil &&
		o.HourWeights == [24]float64{} && o.RebuildInterval == 0
}
