package cablevod

import (
	"fmt"

	"cablevod/internal/adversity"
	"cablevod/internal/core"
)

// SystemState is the complete serialized state of a running System:
// configuration, workload, ingest cursors, the pending disruption
// schedule, and every shard's live state (cache contents and policy
// bookkeeping, placements, event queues, in-flight sessions, rate
// meters, counters). Export one with System.ExportState, persist it
// with SaveState/LoadState, and bring it back to life with Restore. A
// restored System continues the run bit-identically to one that was
// never interrupted, at every Config.Parallelism.
type SystemState = core.SystemState

// Disruptor contributes scheduled supply-side disruptions to a run.
// The adversity faults (NodeFailure, ColdRestart, CoaxDegrade,
// HeteroCache) all implement it; arm one with System.Disrupt.
type Disruptor = core.Disruptor

// NodeFailure takes a fraction of a neighborhood's set-top boxes off
// the cooperative cache — instantly or ramped over RampHours — and
// optionally restores full capacity at RestoreAt. Which boxes fail is
// a deterministic function of Seed and the neighborhood.
type NodeFailure = adversity.NodeFailure

// ColdRestart wipes a neighborhood's pooled cache contents and
// placements at an instant, keeping meters, counters and popularity
// history — the "headend power cycle" incident.
type ColdRestart = adversity.ColdRestart

// CoaxDegrade scales a neighborhood's VoD coax capacity by Factor at
// an instant, optionally restoring the configured capacity at
// RestoreAt.
type CoaxDegrade = adversity.CoaxDegrade

// HeteroCache re-provisions a neighborhood with heterogeneous per-STB
// cache sizes drawn deterministically from [Min, Max].
type HeteroCache = adversity.HeteroCache

// ForkOptions tunes a RunForks comparison.
type ForkOptions = adversity.ForkOptions

// ForkArm is one strategy's outcome in a fork comparison.
type ForkArm = adversity.ForkArm

// ForkReport is the comparative outcome of racing N strategies from
// one warm snapshot; Table renders the comparison.
type ForkReport = adversity.ForkReport

// ExportState serializes the engine's complete live state. The export
// reflects exactly the records submitted so far; the System remains
// usable afterwards.
func (s *System) ExportState() (*SystemState, error) {
	return s.sys.ExportState()
}

// Disrupt schedules a Disruptor's supply-side disruptions onto the
// run's timeline. Disruptions apply deterministically as virtual time
// passes their instants; scheduling one before already-submitted time
// is an error.
func (s *System) Disrupt(d Disruptor) error {
	return s.sys.Disrupt(d)
}

// Fork deep-copies the live engine into n fully independent Systems,
// each continuing from the same warm state. Forks share no mutable
// state: driving them concurrently is race-free, and each produces
// results bit-identical to an independent warm run.
func (s *System) Fork(n int) ([]*System, error) {
	forks, err := s.sys.Fork(n)
	if err != nil {
		return nil, err
	}
	out := make([]*System, len(forks))
	for i, f := range forks {
		out[i] = &System{sys: f}
	}
	return out, nil
}

// SaveState writes a SystemState to path in the versioned snapshot
// format (a JSON header line followed by a gob body), atomically via a
// temp file and rename.
func SaveState(path string, st *SystemState) error {
	return core.SaveStateFile(path, st)
}

// LoadState reads a SystemState written by SaveState, rejecting
// version mismatches before decoding the body.
func LoadState(path string) (*SystemState, error) {
	return core.LoadStateFile(path)
}

// RestoreOptions tunes how a serialized state is brought back to life.
// The zero value restores the snapshot as-is.
type RestoreOptions struct {
	// Strategy, when non-empty, forks the warm state onto a different
	// caching strategy: the inherited cache contents seed the fresh
	// policy, while placements, meters and counters carry over
	// unchanged.
	Strategy string

	// Parallelism, when non-zero, overrides the restored engine's
	// worker-pool width. Results are bit-identical at every level.
	Parallelism int
}

// Restore rebuilds a running System from a serialized state. The state
// value is not consumed: restoring twice yields fully independent
// Systems, which is what lets one snapshot seed many fork arms.
func Restore(st *SystemState, opts RestoreOptions) (*System, error) {
	sys, err := core.RestoreSystem(st, core.RestoreOptions{
		Strategy:    opts.Strategy,
		Parallelism: opts.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	return &System{sys: sys}, nil
}

// RunForks races one fork arm per strategy from the same warm
// snapshot through the same future records — the mid-scenario A/B
// comparison. Arms run concurrently yet deterministically: each arm's
// result is bit-identical to restoring the snapshot alone and driving
// it serially. The report's per-arm hit ratio and savings cover only
// the post-fork window, so strategies are compared on how they handle
// the incident, not on the shared history.
//
// future is the record tail to replay, typically taken from a
// snapshot saved with the future embedded (vodsim -snapshot-out, or
// ScenarioOptions/SpecRunOptions.SnapshotFuture): st.Future[st.Submitted:].
func RunForks(st *SystemState, strategies []string, future []Record, opts ForkOptions) (*ForkReport, error) {
	return adversity.RunForks(st, strategies, future, opts)
}

// FutureTail returns the not-yet-submitted remainder of the workload
// embedded in a snapshot — the records a fork comparison replays. An
// error reports a snapshot saved without its future.
func FutureTail(st *SystemState) ([]Record, error) {
	if st == nil {
		return nil, fmt.Errorf("cablevod: nil system state")
	}
	if len(st.Future) == 0 {
		return nil, fmt.Errorf("cablevod: snapshot has no embedded future to replay (save it with the future included: vodsim -snapshot-out, or SnapshotFuture in the scenario options)")
	}
	if st.Submitted > len(st.Future) {
		return nil, fmt.Errorf("cablevod: snapshot submitted cursor %d exceeds its %d-record future", st.Submitted, len(st.Future))
	}
	return st.Future[st.Submitted:], nil
}
