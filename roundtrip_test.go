package cablevod

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// randomTrace draws a structurally valid trace from rng. Times are whole
// seconds — the resolution of the CSV format — so the property below can
// demand exact record preservation from both encodings.
func randomTrace(rng *rand.Rand) *Trace {
	tr := &Trace{ProgramLengths: map[ProgramID]time.Duration{}}
	n := rng.Intn(200)
	for i := 0; i < n; i++ {
		tr.Append(Record{
			User:     UserID(rng.Intn(1 << 20)),
			Program:  ProgramID(rng.Intn(1 << 20)),
			Start:    time.Duration(rng.Intn(14*24*3600)) * time.Second,
			Duration: time.Duration(1+rng.Intn(4*3600)) * time.Second,
			Offset:   time.Duration(rng.Intn(3600)) * time.Second,
		})
	}
	tr.Sort()
	progs := rng.Intn(20)
	for i := 0; i < progs; i++ {
		tr.ProgramLengths[ProgramID(rng.Intn(1<<20))] = time.Duration(1+rng.Intn(6*3600)) * time.Second
	}
	return tr
}

// TestSaveLoadTraceRoundTripProperty: for any valid trace with
// second-granularity times, SaveTrace then LoadTrace preserves every
// record exactly, in both the .csv and .gob encodings; .gob additionally
// preserves the program-length table.
func TestSaveLoadTraceRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dir := t.TempDir()
	for trial := 0; trial < 50; trial++ {
		tr := randomTrace(rng)
		for _, ext := range []string{".csv", ".gob"} {
			path := filepath.Join(dir, "t"+ext)
			if err := SaveTrace(tr, path); err != nil {
				t.Fatalf("trial %d %s: save: %v", trial, ext, err)
			}
			got, err := LoadTrace(path)
			if err != nil {
				t.Fatalf("trial %d %s: load: %v", trial, ext, err)
			}
			if len(got.Records) != len(tr.Records) {
				t.Fatalf("trial %d %s: %d records, want %d", trial, ext, len(got.Records), len(tr.Records))
			}
			for i := range tr.Records {
				if got.Records[i] != tr.Records[i] {
					t.Fatalf("trial %d %s: record %d = %+v, want %+v",
						trial, ext, i, got.Records[i], tr.Records[i])
				}
			}
			if ext == ".gob" && !reflect.DeepEqual(got.ProgramLengths, tr.ProgramLengths) {
				t.Fatalf("trial %d: gob program lengths = %v, want %v", trial, got.ProgramLengths, tr.ProgramLengths)
			}
		}
	}
}
