package cablevod

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestRunSpecFileSmoke: a checked-in declarative spec runs end to end
// through the public API — engine block applied, checkpoints observed,
// assertions evaluated, report renderable.
func TestRunSpecFileSmoke(t *testing.T) {
	path := filepath.Join("testdata", "scenarios", "flash-crowd.yaml")
	var seen []ScenarioCheckpoint
	report, err := RunSpecFile(path, Config{Parallelism: 2}, SpecRunOptions{
		OnCheckpoint: func(cp ScenarioCheckpoint) { seen = append(seen, cp) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Pass() {
		t.Fatalf("checked-in spec failed: %+v", report.FirstFailure())
	}
	if len(report.Checkpoints) != 6 { // 3 days / 12 h spec cadence
		t.Errorf("got %d checkpoints, want 6", len(report.Checkpoints))
	}
	if len(seen) != len(report.Checkpoints) {
		t.Errorf("observer saw %d checkpoints, report has %d", len(seen), len(report.Checkpoints))
	}
	// The spec's engine block must have overridden the zero-value
	// caller config.
	if got := report.Result.Config.Topology.NeighborhoodSize; got != 100 {
		t.Errorf("spec engine block not applied: neighborhood %d, want 100", got)
	}
	var b strings.Builder
	report.Render(&b)
	if !strings.Contains(b.String(), "result: PASS") {
		t.Errorf("report did not render a PASS verdict:\n%s", b.String())
	}
}

// TestRunSpecFileRejectsVacuousAssertions: assertions without a
// checkpoint cadence are an error at the public surface too.
func TestRunSpecFileRejectsVacuousAssertions(t *testing.T) {
	dir := t.TempDir()
	src := `
name: vacuous
base: {subscribers: 300, catalog: 80, days: 2, backlog_days: 30}
engine: {strategy: lfu, neighborhood: 100, per_peer_storage: 1GB, warmup_days: 0}
assert:
  - type: threshold
    metric: hit_ratio
    op: ">="
    value: 0
    window: {from: 12h, to: 1d}
`
	path := filepath.Join(dir, "vacuous.yaml")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := RunSpecFile(path, Config{}, SpecRunOptions{})
	if err == nil || !strings.Contains(err.Error(), "no checkpoint cadence") {
		t.Fatalf("want no-cadence error, got %v", err)
	}
	// A fallback cadence resolves it.
	if _, err := RunSpecFile(path, Config{Parallelism: 1}, SpecRunOptions{Checkpoint: 12 * time.Hour}); err != nil {
		t.Fatalf("fallback cadence should unblock: %v", err)
	}
}
