package cablevod

import (
	"fmt"
	"time"

	"cablevod/internal/cache"
	"cablevod/internal/core"
)

// Policy API v2: composable pipelines. Instead of implementing the
// seven-method Policy interface, a strategy is assembled from small
// orthogonal stages — a Scorer (retention value), an optional Admission
// filter, a Tiebreak rule, and an optional Planner choosing which
// segments of a program to keep — registered through RegisterPipeline
// and selected by Config.StrategyName like any other strategy. The
// built-in lru, lfu, oracle, and global-lfu strategies are themselves
// pipeline compositions; STRATEGIES.md catalogues the whole zoo.

// Pipeline stage contracts, shared with the engine.
type (
	// Scorer is the valuation stage: it observes requests and scores
	// programs for admission comparison and eviction ranking (higher is
	// more valuable). Scorers with asynchronous decay push score
	// changes of cached programs through the ScoreSink bound to them.
	Scorer = cache.Scorer

	// ScoreSink receives retention-score changes for cached programs
	// from a Scorer.
	ScoreSink = cache.ScoreSink

	// Admission is the filter stage: it decides whether a missed
	// program may enter the cache at all.
	Admission = cache.Admission

	// Planner is the segment-placement stage: it chooses each
	// program's placement plan (prefix depth, replica count) given the
	// run's configured default.
	Planner = cache.Planner

	// Plan is a segment placement plan: how deep a prefix to cache
	// (0 = whole program) and how many copies of each segment to keep.
	Plan = cache.Plan

	// Tiebreak orders programs sharing a score.
	Tiebreak = cache.Tiebreak
)

// Tiebreak modes.
const (
	// TiebreakLRU refreshes recency on every request (the paper's rule,
	// default).
	TiebreakLRU = cache.TiebreakLRU
	// TiebreakFIFO keeps insertion order: equal-scored programs evict
	// oldest-first.
	TiebreakFIFO = cache.TiebreakFIFO
)

// StageTraits declares how one stage's per-neighborhood instances may
// be distributed across concurrent engine shards.
type StageTraits struct {
	// ShardIndependent asserts that instances built by this stage's
	// constructor for different neighborhoods share no mutable state.
	// A pipeline runs its shards concurrently only when every present
	// stage declares independence; the zero value is the safe default
	// (the engine serializes, always correct).
	ShardIndependent bool
}

// ScorerStage builds the valuation stage of a pipeline, once per
// neighborhood.
type ScorerStage struct {
	// New builds the stage for one neighborhood from the run's
	// resolved configuration (required).
	New func(cfg Config) Scorer
	// Traits declares the stage's shard independence.
	Traits StageTraits
}

// AdmissionStage builds the optional admission-filter stage of a
// pipeline, once per neighborhood.
type AdmissionStage struct {
	// New builds the stage (nil = no admission filter: every miss may
	// be considered for admission).
	New func(cfg Config) Admission
	// Traits declares the stage's shard independence.
	Traits StageTraits
}

// PlannerStage builds the optional segment-placement stage of a
// pipeline, once per neighborhood.
type PlannerStage struct {
	// New builds the stage (nil = every program gets the run-default
	// plan from Config.PrefixSegments/Replicas). The neighborhood's
	// scorer is passed in so plans can follow the same valuation
	// (popularity-scaled prefix depths).
	New func(cfg Config, scorer Scorer) Planner
	// Traits declares the stage's shard independence.
	Traits StageTraits
}

// PolicySpec assembles a caching strategy from composable stages. The
// zero value of an optional stage means "absent".
type PolicySpec struct {
	// Name selects the strategy via Config.StrategyName (required,
	// unique across the registry).
	Name string

	// Description is a one-line summary surfaced by ListStrategies and
	// vodsim -strategy-list.
	Description string

	// Scorer is the valuation stage (required).
	Scorer ScorerStage

	// Admission is the optional admission-filter stage.
	Admission AdmissionStage

	// Plan is the optional segment-placement stage.
	Plan PlannerStage

	// Tiebreak orders programs sharing a score (default TiebreakLRU).
	Tiebreak Tiebreak
}

// shardIndependent reports whether every present stage declared shard
// independence, unlocking concurrent shard execution.
func (spec PolicySpec) shardIndependent() bool {
	if !spec.Scorer.Traits.ShardIndependent {
		return false
	}
	if spec.Admission.New != nil && !spec.Admission.Traits.ShardIndependent {
		return false
	}
	if spec.Plan.New != nil && !spec.Plan.Traits.ShardIndependent {
		return false
	}
	return true
}

// RegisterPipeline adds a composed caching strategy to the engine's
// registry, making it selectable by Config.StrategyName in New, Run,
// and RunScenario alongside the built-ins. Stage constructors are
// invoked once per neighborhood per run; the engine executes
// neighborhood shards concurrently only when every present stage
// declares ShardIndependent, and serializes otherwise (always correct).
// Registration fails on an empty name, a missing scorer stage, or a
// name already registered.
func RegisterPipeline(spec PolicySpec) error {
	if spec.Name == "" {
		return fmt.Errorf("cablevod: pipeline spec needs a name")
	}
	if spec.Scorer.New == nil {
		return fmt.Errorf("cablevod: pipeline %q needs a scorer stage", spec.Name)
	}
	factory := func(env *core.PolicyEnv) (func(int) (cache.Policy, error), error) {
		cfg := publicConfig(env.Config)
		return func(int) (cache.Policy, error) {
			scorer := spec.Scorer.New(cfg)
			if scorer == nil {
				return nil, fmt.Errorf("cablevod: pipeline %q scorer stage returned nil", spec.Name)
			}
			pc := cache.PipelineConfig{
				Name:     spec.Name,
				Scorer:   scorer,
				Tiebreak: spec.Tiebreak,
			}
			if spec.Admission.New != nil {
				if pc.Admission = spec.Admission.New(cfg); pc.Admission == nil {
					return nil, fmt.Errorf("cablevod: pipeline %q admission stage returned nil", spec.Name)
				}
			}
			if spec.Plan.New != nil {
				if pc.Planner = spec.Plan.New(cfg, scorer); pc.Planner == nil {
					return nil, fmt.Errorf("cablevod: pipeline %q plan stage returned nil", spec.Name)
				}
			}
			return cache.NewPipeline(pc)
		}, nil
	}
	return core.RegisterStrategyInfo(spec.Name, spec.Description, factory,
		core.StrategyTraits{ShardIndependent: spec.shardIndependent()})
}

// StrategyInfo describes one registered strategy.
type StrategyInfo struct {
	// Name selects the strategy via Config.StrategyName.
	Name string
	// Description is the registrant's one-line summary ("" for
	// strategies registered without one).
	Description string
}

// ListStrategies returns every registered strategy with its
// description, sorted by name — the catalog behind vodsim
// -strategy-list.
func ListStrategies() []StrategyInfo {
	var out []StrategyInfo
	for _, info := range core.StrategyInfos() {
		out = append(out, StrategyInfo{Name: info.Name, Description: info.Description})
	}
	return out
}

// Built-in stages, for composing pipelines without reimplementing the
// bookkeeping. All of them are shard-independent.

// NewConstantScorer returns a scorer valuing every program at score;
// with TiebreakLRU this composes to plain LRU.
func NewConstantScorer(score int) Scorer {
	return cache.NewConstantScorer("constant", score)
}

// NewFrequencyScorer returns the windowed-frequency scorer behind the
// built-in lfu (history 0 degenerates to LRU).
func NewFrequencyScorer(history time.Duration) (Scorer, error) {
	return cache.NewFrequencyScorer(history)
}

// NewRecency2Scorer returns the last-two-reference scorer behind the
// built-in lru-2 (quantum 0 = one hour).
func NewRecency2Scorer(quantum time.Duration) (Scorer, error) {
	return cache.NewRecency2Scorer(quantum)
}

// NewSecondTouchAdmission returns a bypass-on-first-touch filter: only
// programs requested at least twice may be admitted.
func NewSecondTouchAdmission() Admission {
	return cache.NewSecondTouchAdmission()
}

// NewSizeCapAdmission returns a filter admitting only programs whose
// admission size is at most max bytes.
func NewSizeCapAdmission(max ByteSize) (Admission, error) {
	return cache.NewSizeCapAdmission(max)
}

// NewPopularityPrefixPlanner returns the popularity-scaled prefix
// planner behind the built-in prefix-lfu: depth grows with the
// counter's score, and programs scoring wholeAt or above (0 = default
// 4) are kept whole.
func NewPopularityPrefixPlanner(counter Scorer, wholeAt int) (Planner, error) {
	return cache.NewPopularityPrefixPlanner(counter, wholeAt)
}
