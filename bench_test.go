package cablevod

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (one Benchmark per artifact; see DESIGN.md section 5 for the
// mapping). Artifact benches run the full experiment once per iteration
// on the QuickScale workload (full PowerInfo population, 7-day window);
// run the cmd/experiments binary with -scale full for the paper-scale
// numbers recorded in EXPERIMENTS.md.
//
// Micro-benchmarks for the hot data structures follow the artifact
// benches.

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"cablevod/internal/cache"
	"cablevod/internal/core"
	"cablevod/internal/eventq"
	"cablevod/internal/experiments"
	"cablevod/internal/randdist"
	"cablevod/internal/synth"
	"cablevod/internal/telemetry"
	"cablevod/internal/trace"
	"cablevod/internal/units"
)

var benchWorkload struct {
	once sync.Once
	w    *experiments.Workload
	err  error
}

// quickWorkload shares one QuickScale workload across every artifact
// bench so trace generation is paid once.
func quickWorkload(b *testing.B) *experiments.Workload {
	b.Helper()
	benchWorkload.once.Do(func() {
		w, err := experiments.NewWorkload(experiments.QuickScale())
		if err != nil {
			benchWorkload.err = err
			return
		}
		benchWorkload.w = w
		_, benchWorkload.err = w.Trace() // generate outside the timer
	})
	if benchWorkload.err != nil {
		b.Fatal(benchWorkload.err)
	}
	return benchWorkload.w
}

func benchArtifact(b *testing.B, id string) {
	w := quickWorkload(b)
	exp, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := exp.Run(w)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", rep.Render())
		}
	}
}

// Trace-analysis artifacts.

func BenchmarkFig02PopularitySkew(b *testing.B)         { benchArtifact(b, "fig2") }
func BenchmarkFig03SessionLengthCDF(b *testing.B)       { benchArtifact(b, "fig3") }
func BenchmarkFig06ProgramLengthInference(b *testing.B) { benchArtifact(b, "fig6") }
func BenchmarkFig07DiurnalLoad(b *testing.B)            { benchArtifact(b, "fig7") }
func BenchmarkFig12IntroductionDecay(b *testing.B)      { benchArtifact(b, "fig12") }

// Full-system artifacts.

func BenchmarkFig08CacheSizeFixedNeighborhood(b *testing.B) { benchArtifact(b, "fig8") }
func BenchmarkFig09CacheSizeFixedPerPeer(b *testing.B)      { benchArtifact(b, "fig9") }
func BenchmarkFig10NeighborhoodSize(b *testing.B)           { benchArtifact(b, "fig10") }
func BenchmarkFig11LFUHistory(b *testing.B)                 { benchArtifact(b, "fig11") }
func BenchmarkFig13GlobalPopularity(b *testing.B)           { benchArtifact(b, "fig13") }
func BenchmarkFig14CoaxTraffic(b *testing.B)                { benchArtifact(b, "fig14") }

// Scaling artifacts (heavy: the grid multiplies the workload).

func BenchmarkFig15ScalingGrid(b *testing.B) {
	w := quickWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.ScalingGrid(w, 3, 3)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			rep.Notes = append(rep.Notes, "bench runs the 3x3 corner; cmd/experiments -run fig15 runs the full 5x5")
			b.Logf("\n%s", rep.Render())
		}
	}
}

func BenchmarkTable16aScalingGrid(b *testing.B) {
	// Table 16(a) is the numeric form of Figure 15; the bench exercises
	// the same runner at the 2x2 corner to keep the suite's runtime
	// bounded while still covering both scaling transforms.
	w := quickWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.ScalingGrid(w, 2, 2)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", rep.Render())
		}
	}
}

func BenchmarkFig16bPopulationScaling(b *testing.B) { benchArtifact(b, "fig16b") }
func BenchmarkFig16cCatalogScaling(b *testing.B)    { benchArtifact(b, "fig16c") }

// Suite benchmarks: every light (non-heavy) artifact end to end, at
// serial and at default (GOMAXPROCS) sweep parallelism. The pair
// measures the experiment engine's fan-out: on an N-core machine the
// parallel run should approach N-fold speedup on the simulation sweeps.
// TinyScale keeps one iteration in benchmark territory; trace
// generation happens outside the timer and each iteration gets a fresh
// workload so no variant benefits from another's derived-trace cache.

func benchSuite(b *testing.B, workers int) {
	experiments.SetParallelism(workers)
	defer experiments.SetParallelism(0)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w, err := experiments.NewWorkload(experiments.TinyScale())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := w.Trace(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for _, e := range experiments.All() {
			if e.Heavy {
				continue
			}
			if _, err := e.Run(w); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSuiteSerial(b *testing.B)   { benchSuite(b, 1) }
func BenchmarkSuiteParallel(b *testing.B) { benchSuite(b, 0) }

// Engine benchmarks: one full-system Run (LFU, the paper's 1,000-peer
// neighborhoods at 10 GB per peer) with the shard worker pool serial
// vs. GOMAXPROCS-wide. FullScale builds ~42 shards, so on an N-core
// machine the sharded run should approach N-fold speedup; results are
// bit-identical at both settings, which TestShardedEngineEquivalence
// (internal/core) and TestSystemMatchesRun pin. Speedups measured on a
// given machine are recorded in EXPERIMENTS.md.

var engineBenchTraces struct {
	mu     sync.Mutex
	traces map[string]*trace.Trace
}

// engineBenchTrace memoizes one trace per scale so serial and sharded
// variants share a single generation pass, outside the timer.
func engineBenchTrace(b *testing.B, name string, scale experiments.Scale) *trace.Trace {
	b.Helper()
	engineBenchTraces.mu.Lock()
	defer engineBenchTraces.mu.Unlock()
	if tr, ok := engineBenchTraces.traces[name]; ok {
		return tr
	}
	w, err := experiments.NewWorkload(scale)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := w.Trace()
	if err != nil {
		b.Fatal(err)
	}
	if engineBenchTraces.traces == nil {
		engineBenchTraces.traces = make(map[string]*trace.Trace)
	}
	engineBenchTraces.traces[name] = tr
	return tr
}

func benchEngineRun(b *testing.B, name string, scale experiments.Scale, parallelism int) {
	tr := engineBenchTrace(b, name, scale)
	cfg := Config{
		NeighborhoodSize: 1000,
		PerPeerStorage:   10 * GB,
		Strategy:         LFU,
		WarmupDays:       scale.WarmupDays,
		Parallelism:      parallelism,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, tr); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr.Records))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

func BenchmarkRunSerial(b *testing.B) {
	b.Run("QuickScale", func(b *testing.B) { benchEngineRun(b, "quick", experiments.QuickScale(), 1) })
	b.Run("FullScale", func(b *testing.B) { benchEngineRun(b, "full", experiments.FullScale(), 1) })
}

func BenchmarkRunSharded(b *testing.B) {
	b.Run("QuickScale", func(b *testing.B) { benchEngineRun(b, "quick", experiments.QuickScale(), 0) })
	b.Run("FullScale", func(b *testing.B) { benchEngineRun(b, "full", experiments.FullScale(), 0) })
}

// Ablations (design-choice benches called out in DESIGN.md).

func BenchmarkAblationFillMode(b *testing.B)        { benchArtifact(b, "abl-fill") }
func BenchmarkAblationPeerStreamLimit(b *testing.B) { benchArtifact(b, "abl-streams") }
func BenchmarkAblationPlacement(b *testing.B)       { benchArtifact(b, "abl-placement") }
func BenchmarkAblationReplication(b *testing.B)     { benchArtifact(b, "abl-replicas") }
func BenchmarkAblationPrefixCaching(b *testing.B)   { benchArtifact(b, "abl-prefix") }
func BenchmarkAblationSeekWorkload(b *testing.B)    { benchArtifact(b, "abl-seek") }

// Micro-benchmarks.

func BenchmarkTraceGeneration(b *testing.B) {
	cfg := synth.DefaultConfig()
	cfg.Users = 5_000
	cfg.Programs = 1_000
	cfg.Days = 7
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := synth.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(tr.Len())/float64(b.Elapsed().Seconds()+1e-9), "records/s")
		}
	}
}

func BenchmarkEventQueue(b *testing.B) {
	q := eventq.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.ScheduleAfter(time.Duration(i%1000)*time.Millisecond, eventq.PrioritySegment,
			eventq.Func(func(time.Duration) {}))
		if i%1000 == 999 {
			q.Run()
		}
	}
	q.Run()
}

func benchPolicy(b *testing.B, mk func() cache.Policy) {
	c, err := cache.New(100*units.GB, mk())
	if err != nil {
		b.Fatal(err)
	}
	x := uint64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		p := trace.ProgramID(x % 4096)
		c.Access(p, units.ByteSize(1+x%4)*units.GB, time.Duration(i)*time.Second)
	}
}

func BenchmarkCacheLRU(b *testing.B) {
	benchPolicy(b, func() cache.Policy { return cache.NewLRU() })
}

func BenchmarkCacheLFU(b *testing.B) {
	benchPolicy(b, func() cache.Policy {
		p, err := cache.NewLFU(24 * time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		return p
	})
}

func BenchmarkZipfAliasDraw(b *testing.B) {
	weights, err := randdist.ZipfWeights(8278, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	alias, err := randdist.NewAlias(weights)
	if err != nil {
		b.Fatal(err)
	}
	rng := randdist.NewRNG(1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = alias.Draw(rng)
	}
}

func BenchmarkSimulationThroughput(b *testing.B) {
	// End-to-end simulator throughput in sessions/s on a mid-size
	// workload.
	cfg := synth.DefaultConfig()
	cfg.Users = 5_000
	cfg.Programs = 1_000
	cfg.Days = 7
	tr, err := synth.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{
			NeighborhoodSize: 500,
			PerPeerStorage:   10 * GB,
			Strategy:         LFU,
			WarmupDays:       2,
		}, tr)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Counters.Sessions)/b.Elapsed().Seconds(), "sessions/s")
		}
	}
}

// Sanity guard: the bench workload must stay consistent with the scale
// constants documented in EXPERIMENTS.md.
func TestBenchWorkloadShape(t *testing.T) {
	s := experiments.QuickScale()
	if s.Users != 41_698 || s.Programs != 8_278 {
		t.Errorf("QuickScale population drifted: %+v", s)
	}
	if fmt.Sprintf("%d/%d", s.Days, s.WarmupDays) != "7/3" {
		t.Errorf("QuickScale window drifted: %+v", s)
	}
}

// benchSubmitOnce streams one full trace through the sharded online
// engine via SubmitBatch — the live-service hot path — with or without
// the telemetry collector attached, returning the wall time.
func benchSubmitOnce(b *testing.B, tr *trace.Trace, withCollector bool) time.Duration {
	b.Helper()
	cfg := Config{
		NeighborhoodSize: 1000,
		PerPeerStorage:   10 * GB,
		Strategy:         LFU,
		WarmupDays:       experiments.QuickScale().WarmupDays,
	}
	sys, err := core.NewSystem(cfg.internal(), core.Workload{
		Users:   tr.Users(),
		Lengths: core.TraceLengths(tr),
	})
	if err != nil {
		b.Fatal(err)
	}
	if withCollector {
		col, err := telemetry.NewCollector(telemetry.LatencyModel{}, sys.Shards())
		if err != nil {
			b.Fatal(err)
		}
		sys.SetCollector(col)
	}
	start := time.Now()
	if err := sys.SubmitBatch(tr.Records); err != nil {
		b.Fatal(err)
	}
	if _, err := sys.Close(); err != nil {
		b.Fatal(err)
	}
	return time.Since(start)
}

// BenchmarkSubmitWithTelemetry is the live-service telemetry budget:
// the Submit path with the latency collector attached against the bare
// engine, interleaved A/B per iteration at QuickScale. With at least
// two iterations (-benchtime 2x or more), the collector must stay
// within 5% of the bare path — telemetry is observational in cost, not
// just in results.
func BenchmarkSubmitWithTelemetry(b *testing.B) {
	tr := engineBenchTrace(b, "quick", experiments.QuickScale())
	ratios := make([]float64, 0, b.N)
	var withTel time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The two legs of a pair run back to back (alternating order
		// across pairs to cancel position effects), so shared-runner
		// drift hits both legs of a pair about equally and the
		// per-pair ratio is the drift-robust overhead estimate.
		var bare, teled time.Duration
		if i%2 == 0 {
			bare = benchSubmitOnce(b, tr, false)
			teled = benchSubmitOnce(b, tr, true)
		} else {
			teled = benchSubmitOnce(b, tr, true)
			bare = benchSubmitOnce(b, tr, false)
		}
		withTel += teled
		ratios = append(ratios, float64(teled)/float64(bare))
	}
	// Judged on the best pair: noise only ever adds time, so the pair
	// least disturbed by it bounds the collector's true cost.
	sort.Float64s(ratios)
	overhead := 100 * (ratios[0] - 1)
	b.ReportMetric(overhead, "overhead-%")
	b.ReportMetric(float64(len(tr.Records))*float64(b.N)/withTel.Seconds(), "records/s")
	if b.N >= 2 && overhead > 5 {
		b.Errorf("telemetry collector overhead %.1f%% exceeds the 5%% budget (best of %d interleaved pairs)",
			overhead, b.N)
	}
}

// registerFusedLFUBench registers the fused v1 LFU under a bench-only
// name, once per test binary, as the baseline for the pipeline-adapter
// overhead budget.
var registerFusedLFUBench = sync.OnceValue(func() error {
	return core.RegisterStrategyTraits("lfu-v1-bench",
		func(env *core.PolicyEnv) (func(int) (cache.Policy, error), error) {
			history := env.Config.LFUHistory
			return func(int) (cache.Policy, error) { return cache.NewLFU(history) }, nil
		}, core.StrategyTraits{ShardIndependent: true})
})

// BenchmarkPipelineOverhead is the Policy API v2 performance budget:
// the pipeline-composed lfu against the fused v1 LFU on the QuickScale
// engine run, interleaved A/B per iteration. With at least two
// iterations (-benchtime 2x or more, so one-shot scheduler noise cannot
// decide it), the adapter must stay within 5% of the fused policy.
func BenchmarkPipelineOverhead(b *testing.B) {
	if err := registerFusedLFUBench(); err != nil {
		b.Fatal(err)
	}
	tr := engineBenchTrace(b, "quick", experiments.QuickScale())
	cfg := Config{
		NeighborhoodSize: 1000,
		PerPeerStorage:   10 * GB,
		WarmupDays:       experiments.QuickScale().WarmupDays,
		Parallelism:      1,
	}
	run := func(name string) time.Duration {
		c := cfg
		c.StrategyName = name
		start := time.Now()
		if _, err := Run(c, tr); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	// Interleaved A/B, judged on each side's minimum: scheduler noise
	// on a shared runner only ever adds time, so the fastest observed
	// run of each engine is the noise-robust estimate of its true cost.
	fused := make([]time.Duration, 0, b.N)
	piped := make([]time.Duration, 0, b.N)
	var pipelined time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fused = append(fused, run("lfu-v1-bench"))
		p := run("lfu")
		piped = append(piped, p)
		pipelined += p
	}
	sort.Slice(fused, func(i, j int) bool { return fused[i] < fused[j] })
	sort.Slice(piped, func(i, j int) bool { return piped[i] < piped[j] })
	overhead := 100 * (float64(piped[0]) - float64(fused[0])) / float64(fused[0])
	b.ReportMetric(overhead, "overhead-%")
	b.ReportMetric(float64(len(tr.Records))*float64(b.N)/pipelined.Seconds(), "records/s")
	if b.N >= 2 && overhead > 5 {
		b.Errorf("pipeline adapter overhead %.1f%% exceeds the 5%% budget (fastest fused %v vs fastest pipeline %v over %d interleaved pairs)",
			overhead, fused[0], piped[0], b.N)
	}
}
