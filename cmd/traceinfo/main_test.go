package main

import (
	"os"
	"path/filepath"
	"testing"

	"cablevod"
)

func quietStdout(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

func TestRunOnTraceFile(t *testing.T) {
	quietStdout(t)
	opts := cablevod.DefaultTraceOptions()
	opts.Users, opts.Programs, opts.Days = 400, 80, 3
	tr, err := cablevod.GenerateTrace(opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.gob")
	if err := cablevod.SaveTrace(tr, path); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-trace", path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSynthMode(t *testing.T) {
	quietStdout(t)
	if err := run([]string{"-synth", "-synth-days", "2"}); err != nil {
		// The default synth population is large; tolerate only success.
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	quietStdout(t)
	if err := run(nil); err == nil {
		t.Error("expected error without -trace or -synth")
	}
	if err := run([]string{"-trace", "/nope.gob"}); err == nil {
		t.Error("expected error for missing file")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("expected flag error")
	}
}
