// Command traceinfo prints workload analytics for a VoD trace: the
// summary statistics, the diurnal load curve (Figure 7), the popularity
// skew (Figure 2), the session-length distribution (Figure 3) and the
// introduction-decay series (Figure 12).
//
// Usage:
//
//	traceinfo -trace trace.gob
//	traceinfo -synth            # analyze a freshly generated default trace
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cablevod"
	"cablevod/internal/popularity"
	"cablevod/internal/trace"
	"cablevod/internal/units"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "traceinfo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("traceinfo", flag.ContinueOnError)
	var (
		path  = fs.String("trace", "", "trace file (.csv or .gob)")
		synth = fs.Bool("synth", false, "analyze a freshly generated default trace")
		days  = fs.Int("synth-days", 14, "days for -synth")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var tr *cablevod.Trace
	var err error
	switch {
	case *synth:
		opts := cablevod.DefaultTraceOptions()
		opts.Days = *days
		tr, err = cablevod.GenerateTrace(opts)
	case *path != "":
		tr, err = cablevod.LoadTrace(*path)
	default:
		return fmt.Errorf("need -trace FILE or -synth")
	}
	if err != nil {
		return err
	}

	printSummary(tr)
	printDiurnal(tr)
	printSkew(tr)
	printSessionLengths(tr)
	printDecay(tr)
	return nil
}

func printSummary(tr *cablevod.Trace) {
	s := tr.Summarize()
	fmt.Println("== summary ==")
	fmt.Printf("sessions            %d\n", s.Records)
	fmt.Printf("users               %d\n", s.Users)
	fmt.Printf("programs            %d\n", s.Programs)
	fmt.Printf("span                %v (%d days)\n", s.Span, int(s.Span.Hours()/24))
	fmt.Printf("sessions/user-day   %.2f\n", s.SessionsPerUserDay)
	fmt.Printf("mean session        %v\n", s.MeanSessionLength.Round(time.Second))
	fmt.Printf("median session      %v\n", s.MedianSessionLength.Round(time.Second))
	fmt.Println()
}

func printDiurnal(tr *cablevod.Trace) {
	fmt.Println("== hourly demand (fig 7) ==")
	rates := tr.HourlyRate()
	max := cablevod.BitRate(0)
	for _, r := range rates {
		if r > max {
			max = r
		}
	}
	for h, r := range rates {
		bar := ""
		if max > 0 {
			bar = barOf(int(40 * float64(r) / float64(max)))
		}
		fmt.Printf("%02d  %7.2f Gb/s  %s\n", h, r.Gbps(), bar)
	}
	fmt.Println()
}

func barOf(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}

func printSkew(tr *cablevod.Trace) {
	fmt.Println("== popularity skew, 15-min session initiations (fig 2) ==")
	_, end := tr.Span()
	from := end - 7*units.Day
	if from < 0 {
		from = 0
	}
	series := tr.PopularityQuantiles(from, end, 15*time.Minute, []float64{0.99, 0.95})
	if len(series) == 3 {
		fmt.Printf("maximum       %d\n", series[0].Max())
		fmt.Printf("99%% quantile  %d\n", series[1].Max())
		fmt.Printf("95%% quantile  %d\n", series[2].Max())
	}
	fmt.Println()
}

func printSessionLengths(tr *cablevod.Trace) {
	fmt.Println("== session lengths, most popular program (figs 3/6) ==")
	top := tr.MostPopular(1)
	if len(top) == 0 {
		return
	}
	lengths, probs := tr.SessionLengthECDF(top[0])
	full := tr.ProgramLength(top[0])
	fmt.Printf("program %d, %d sessions, length %v\n", top[0], len(lengths), full)
	for _, mark := range []time.Duration{2 * time.Minute, 8 * time.Minute, 30 * time.Minute, full / 2, full} {
		p := 0.0
		for i, l := range lengths {
			if l <= mark {
				p = probs[i]
			}
		}
		fmt.Printf("P(len <= %8v) = %.2f\n", mark.Round(time.Second), p)
	}
	inferred := tr.Clone()
	inferred.ProgramLengths = map[trace.ProgramID]time.Duration{}
	n := inferred.InferProgramLengths(trace.DefaultInferOptions())
	fmt.Printf("completion jumps detected: %d programs; top program inferred %v (true %v)\n",
		n, inferred.ProgramLengths[top[0]], full)
	fmt.Println()
}

func printDecay(tr *cablevod.Trace) {
	fmt.Println("== popularity after introduction (fig 12) ==")
	_, end := tr.Span()
	days := int(end / units.Day)
	if days > 11 {
		days = 11
	}
	if days < 2 {
		fmt.Println("(trace too short)")
		return
	}
	series := popularity.IntroductionDecay(tr, 25, days, units.Day)
	for d, v := range series {
		fmt.Printf("day %2d  %6.2f avg concurrent sessions\n", d, v)
	}
}
