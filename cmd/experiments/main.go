// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig8,fig14
//	experiments -all            # every artifact (the scaling grid is slow)
//	experiments -all -light     # every artifact except the scaling grid
//	experiments -scale quick    # shorter workload window
//	experiments -parallel 8     # sweep worker-pool width (0 = GOMAXPROCS)
//	experiments -progress       # per-point progress on stderr
//
// Reports are deterministic for every -parallel value; the flag only
// trades wall-clock time against CPU.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cablevod/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		list      = fs.Bool("list", false, "list artifacts and exit")
		runIDs    = fs.String("run", "", "comma-separated artifact ids to run")
		all       = fs.Bool("all", false, "run every artifact")
		light     = fs.Bool("light", false, "with -all, skip the heavy scaling artifacts")
		scaleName = fs.String("scale", "full", "workload scale: full, quick or tiny")
		seed      = fs.Uint64("seed", 1, "workload seed")
		parallel  = fs.Int("parallel", 0, "sweep worker-pool width (0 = GOMAXPROCS)")
		progress  = fs.Bool("progress", false, "print per-point sweep progress to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	experiments.SetParallelism(*parallel)
	defer experiments.SetParallelism(0)
	if *progress {
		experiments.SetProgress(func(point string, done, total int) {
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s\n", done, total, point)
		})
		defer experiments.SetProgress(nil)
	}

	if *list {
		for _, e := range experiments.All() {
			heavy := ""
			if e.Heavy {
				heavy = " (heavy)"
			}
			fmt.Printf("%-14s %s%s\n", e.ID, e.Title, heavy)
		}
		return nil
	}

	var scale experiments.Scale
	switch *scaleName {
	case "full":
		scale = experiments.FullScale()
	case "quick":
		scale = experiments.QuickScale()
	case "tiny":
		scale = experiments.TinyScale()
	default:
		return fmt.Errorf("unknown scale %q (want full, quick or tiny)", *scaleName)
	}
	scale.Seed = *seed

	var selected []experiments.Experiment
	switch {
	case *all:
		for _, e := range experiments.All() {
			if *light && e.Heavy {
				continue
			}
			selected = append(selected, e)
		}
	case *runIDs != "":
		for _, id := range strings.Split(*runIDs, ",") {
			e, err := experiments.Lookup(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	default:
		return fmt.Errorf("need -list, -run IDS or -all")
	}

	w, err := experiments.NewWorkload(scale)
	if err != nil {
		return err
	}
	fmt.Printf("workload: %d users, %d programs, %d days (%d warmup), seed %d, %d workers\n\n",
		scale.Users, scale.Programs, scale.Days, scale.WarmupDays, scale.Seed,
		experiments.Parallelism())
	for _, e := range selected {
		start := time.Now()
		rep, err := e.Run(w)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Println(rep.Render())
		fmt.Printf("# completed in %v\n\n", time.Since(start).Round(time.Millisecond))
	}
	return nil
}
