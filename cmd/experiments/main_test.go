package main

import (
	"os"
	"testing"
)

func quietStdout(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

func TestRunList(t *testing.T) {
	quietStdout(t)
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleArtifactTiny(t *testing.T) {
	quietStdout(t)
	if err := run([]string{"-run", "fig7", "-scale", "tiny"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMultipleArtifactsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("system experiments in -short mode")
	}
	quietStdout(t)
	if err := run([]string{"-run", "fig2,fig14", "-scale", "tiny"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunParallelWithProgressTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("system experiments in -short mode")
	}
	quietStdout(t)
	if err := run([]string{"-run", "fig14", "-scale", "tiny", "-parallel", "4", "-progress"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	quietStdout(t)
	cases := [][]string{
		{},                // no mode selected
		{"-run", "bogus"}, // unknown artifact
		{"-scale", "bogus", "-run", "fig7"},
		{"-bogus"},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}
