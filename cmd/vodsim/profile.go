package main

import (
	"fmt"
	"os"

	"cablevod/internal/perf"
)

// profileTopN is how many flat symbols a finished -profile-dir capture
// prints — the same table depth EXPERIMENTS.md commits.
const profileTopN = 10

// startProfile begins a CPU+heap capture into dir and returns the stop
// function that finalizes both profiles and prints their top flat
// symbols to stderr, so a profiling run ends with the hot-spot table
// already extracted.
func startProfile(dir string) (func() error, error) {
	cap_, err := perf.Start(dir)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "vodsim: profiling into %s\n", dir)
	return func() error {
		if err := cap_.Stop(); err != nil {
			return err
		}
		for _, path := range []string{cap_.CPUPath(), cap_.HeapPath()} {
			table, err := perf.TopTable(path, profileTopN)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "\nvodsim: top %d by flat weight (%s):\n%s", profileTopN, path, table)
		}
		return nil
	}, nil
}
