package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cablevod"
)

func quietStdout(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

func smallTraceFile(t *testing.T) string {
	t.Helper()
	opts := cablevod.DefaultTraceOptions()
	opts.Users, opts.Programs, opts.Days = 300, 60, 2
	tr, err := cablevod.GenerateTrace(opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.gob")
	if err := cablevod.SaveTrace(tr, path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunFromTraceFile(t *testing.T) {
	quietStdout(t)
	path := smallTraceFile(t)
	for _, strat := range []string{"lru", "lfu", "oracle", "global-lfu"} {
		if err := run([]string{
			"-trace", path, "-neighborhood", "150", "-storage", "1GB",
			"-strategy", strat, "-warmup", "0",
		}); err != nil {
			t.Errorf("%s: %v", strat, err)
		}
	}
}

func TestRunFillModes(t *testing.T) {
	quietStdout(t)
	path := smallTraceFile(t)
	for _, fill := range []string{"immediate", "on-broadcast"} {
		if err := run([]string{"-trace", path, "-neighborhood", "150", "-fill", fill, "-warmup", "0"}); err != nil {
			t.Errorf("%s: %v", fill, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	quietStdout(t)
	path := smallTraceFile(t)
	cases := [][]string{
		{},                      // neither -trace nor -synth
		{"-trace", "/nope.gob"}, // missing file
		{"-trace", path, "-strategy", "bogus"},
		{"-trace", path, "-storage", "bogus"},
		{"-trace", path, "-fill", "bogus"},
		{"-bogus"},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

func TestRunSynth(t *testing.T) {
	quietStdout(t)
	if err := run([]string{
		"-synth", "-synth-users", "300", "-synth-programs", "60", "-synth-days", "2",
		"-neighborhood", "150", "-warmup", "0",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExtensionFlags(t *testing.T) {
	quietStdout(t)
	path := smallTraceFile(t)
	if err := run([]string{
		"-trace", path, "-neighborhood", "150", "-storage", "1GB", "-warmup", "0",
		"-replicas", "2", "-prefix-segments", "4", "-max-streams", "4",
	}); err != nil {
		t.Error(err)
	}
	// Invalid values surface as config errors.
	if err := run([]string{"-trace", path, "-replicas", "-1"}); err == nil {
		t.Error("expected error for negative replicas")
	}
	if err := run([]string{"-trace", path, "-prefix-segments", "-1"}); err == nil {
		t.Error("expected error for negative prefix segments")
	}
	if err := run([]string{"-trace", path, "-max-streams", "-1"}); err == nil {
		t.Error("expected error for negative max streams")
	}
}

func TestRunLive(t *testing.T) {
	quietStdout(t)
	path := smallTraceFile(t)
	for _, strat := range []string{"lfu", "oracle"} {
		if err := run([]string{
			"-trace", path, "-neighborhood", "150", "-storage", "1GB",
			"-strategy", strat, "-warmup", "0", "-live", "1",
		}); err != nil {
			t.Errorf("%s: %v", strat, err)
		}
	}
}

// captureStdout runs fn with os.Stdout redirected into a buffer and
// returns what it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf strings.Builder
		_, _ = io.Copy(&buf, r)
		done <- buf.String()
	}()
	errRun := fn()
	os.Stdout = old
	w.Close()
	out := <-done
	r.Close()
	if errRun != nil {
		t.Fatal(errRun)
	}
	return out
}

// TestRunLiveParallelBreakdown: -parallel wires the shard worker pool
// and -live prints the shard count and per-neighborhood breakdown.
func TestRunLiveParallelBreakdown(t *testing.T) {
	path := smallTraceFile(t)
	out := captureStdout(t, func() error {
		return run([]string{
			"-trace", path, "-neighborhood", "100", "-storage", "1GB",
			"-warmup", "0", "-live", "1", "-parallel", "2",
		})
	})
	if !strings.Contains(out, "shards (one per neighborhood)") {
		t.Errorf("live output missing shard count line:\n%s", out)
	}
	if !strings.Contains(out, "per-neighborhood breakdown") {
		t.Errorf("live output missing per-neighborhood breakdown:\n%s", out)
	}
	// 300 users over 100-peer neighborhoods = 3 shard rows.
	for _, row := range []string{"   0 ", "   1 ", "   2 "} {
		if !strings.Contains(out, row) {
			t.Errorf("breakdown missing neighborhood row %q:\n%s", row, out)
		}
	}
}

// TestRunParallelMatchesSerial: the batch CLI path produces identical
// headline output at -parallel 1 and -parallel 4.
func TestRunParallelMatchesSerial(t *testing.T) {
	path := smallTraceFile(t)
	var outs []string
	for _, par := range []string{"1", "4"} {
		out := captureStdout(t, func() error {
			return run([]string{
				"-trace", path, "-neighborhood", "100", "-storage", "1GB",
				"-warmup", "0", "-parallel", par,
			})
		})
		// The elapsed line is wall-clock and legitimately differs.
		lines := strings.Split(out, "\n")
		kept := lines[:0]
		for _, l := range lines {
			if !strings.HasPrefix(l, "elapsed") {
				kept = append(kept, l)
			}
		}
		outs = append(outs, strings.Join(kept, "\n"))
	}
	if outs[0] != outs[1] {
		t.Errorf("-parallel 4 output differs from -parallel 1:\n--- serial ---\n%s\n--- parallel ---\n%s", outs[0], outs[1])
	}
}

func TestRunRegisteredStrategyName(t *testing.T) {
	quietStdout(t)
	if err := cablevod.RegisterStrategy("vodsim-test-lru", func(cablevod.Config) cablevod.Policy {
		return nopPolicy{}
	}); err != nil {
		t.Fatal(err)
	}
	path := smallTraceFile(t)
	if err := run([]string{"-trace", path, "-neighborhood", "150", "-strategy", "vodsim-test-lru", "-warmup", "0"}); err != nil {
		t.Error(err)
	}
}

// scenarioArgs are the common CI-scale sizing flags for -scenario runs.
func scenarioArgs(extra ...string) []string {
	args := []string{
		"-scenario", "flash-crowd", "-synth-users", "300", "-synth-programs", "60",
		"-synth-days", "3", "-neighborhood", "150", "-storage", "1GB", "-warmup", "0",
	}
	return append(args, extra...)
}

// TestRunScenarioMode: -scenario drives a registered scenario end to
// end, with checkpoints labelled by the active phase.
func TestRunScenarioMode(t *testing.T) {
	out := captureStdout(t, func() error {
		return run(scenarioArgs("-checkpoint", "24"))
	})
	if !strings.Contains(out, "[flash") {
		t.Errorf("no checkpoint labelled with the flash phase:\n%s", out)
	}
	if !strings.Contains(out, "savings") {
		t.Errorf("missing final result:\n%s", out)
	}
}

// TestRunScenarioList: -scenario-list prints the registry.
func TestRunScenarioList(t *testing.T) {
	out := captureStdout(t, func() error {
		return run([]string{"-scenario-list"})
	})
	for _, name := range []string{"flash-crowd", "premiere", "churn-wave", "weekend-surge", "regional-drift"} {
		if !strings.Contains(out, name) {
			t.Errorf("scenario list missing %q:\n%s", name, out)
		}
	}
}

// TestRunScenarioJSON: -snapshot-json emits one parseable JSON object
// per checkpoint with the machine-readable metrics fields.
func TestRunScenarioJSON(t *testing.T) {
	out := captureStdout(t, func() error {
		return run(scenarioArgs("-checkpoint", "24", "-snapshot-json"))
	})
	jsonLines := 0
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "{") {
			continue
		}
		jsonLines++
		var cp struct {
			AtHours float64 `json:"at_hours"`
			Phases  string  `json:"phases"`
			Metrics struct {
				HitRatio        float64          `json:"hit_ratio"`
				Counters        map[string]int64 `json:"counters"`
				PerNeighborhood []map[string]any `json:"per_neighborhood"`
			} `json:"metrics"`
		}
		if err := json.Unmarshal([]byte(line), &cp); err != nil {
			t.Fatalf("unparseable checkpoint line: %v\n%s", err, line)
		}
		if cp.AtHours <= 0 || cp.Metrics.Counters["sessions"] == 0 || len(cp.Metrics.PerNeighborhood) != 2 {
			t.Errorf("checkpoint JSON missing fields: %s", line)
		}
	}
	if jsonLines != 3 {
		t.Errorf("got %d JSON checkpoint lines, want 3:\n%s", jsonLines, out)
	}
}

// TestRunLiveJSON: -live -snapshot-json emits JSON snapshots.
func TestRunLiveJSON(t *testing.T) {
	path := smallTraceFile(t)
	out := captureStdout(t, func() error {
		return run([]string{
			"-trace", path, "-neighborhood", "150", "-storage", "1GB",
			"-warmup", "0", "-live", "1", "-snapshot-json",
		})
	})
	saw := false
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "{") {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("unparseable snapshot line: %v\n%s", err, line)
		}
		if _, ok := m["per_neighborhood"]; !ok {
			t.Errorf("snapshot JSON missing per_neighborhood: %s", line)
		}
		saw = true
	}
	if !saw {
		t.Errorf("no JSON snapshot lines in live output:\n%s", out)
	}
}

// TestRunScenarioErrors: broken scenario flags are rejected.
func TestRunScenarioErrors(t *testing.T) {
	quietStdout(t)
	cases := [][]string{
		{"-scenario", "no-such-scenario"},   // unknown name
		scenarioArgs("-checkpoint", "-1"),   // negative checkpoint
		scenarioArgs("-accel", "-2"),        // negative acceleration
		scenarioArgs("-strategy", "oracle"), // offline strategy, no future
		scenarioArgs("-synth-days", "0"),    // invalid base workload
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

// nopPolicy never caches anything.
type nopPolicy struct{}

func (nopPolicy) Name() string                                         { return "nop" }
func (nopPolicy) Advance(time.Duration)                                {}
func (nopPolicy) OnRequest(cablevod.ProgramID, time.Duration)          {}
func (nopPolicy) CandidateValue(cablevod.ProgramID, time.Duration) int { return -1 }
func (nopPolicy) OnAdmit(cablevod.ProgramID, time.Duration)            {}
func (nopPolicy) OnEvict(cablevod.ProgramID)                           {}
func (nopPolicy) EvictionOrder(func(cablevod.ProgramID, int) bool)     {}

// TestRunStrategyList: -strategy-list prints every registered strategy
// with its registry description.
func TestRunStrategyList(t *testing.T) {
	out := captureStdout(t, func() error {
		return run([]string{"-strategy-list"})
	})
	for _, name := range []string{"lru", "lfu", "oracle", "global-lfu", "gdsf", "lru-2", "prefix-lfu"} {
		if !strings.Contains(out, name) {
			t.Errorf("strategy list missing %q:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "size-aware frequency") {
		t.Errorf("strategy list missing registry descriptions:\n%s", out)
	}
}

// TestRunZooStrategy: a zoo strategy is selectable by -strategy.
func TestRunZooStrategy(t *testing.T) {
	out := captureStdout(t, func() error {
		return run([]string{"-synth", "-synth-users", "600", "-synth-programs", "120",
			"-synth-days", "2", "-neighborhood", "300", "-storage", "1GB",
			"-warmup", "0", "-strategy", "gdsf"})
	})
	if !strings.Contains(out, "strategy            gdsf") {
		t.Errorf("output does not report the gdsf strategy:\n%s", out)
	}
}
