package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cablevod"
)

func quietStdout(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

func smallTraceFile(t *testing.T) string {
	t.Helper()
	opts := cablevod.DefaultTraceOptions()
	opts.Users, opts.Programs, opts.Days = 300, 60, 2
	tr, err := cablevod.GenerateTrace(opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.gob")
	if err := cablevod.SaveTrace(tr, path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunFromTraceFile(t *testing.T) {
	quietStdout(t)
	path := smallTraceFile(t)
	for _, strat := range []string{"lru", "lfu", "oracle", "global-lfu"} {
		if err := run([]string{
			"-trace", path, "-neighborhood", "150", "-storage", "1GB",
			"-strategy", strat, "-warmup", "0",
		}); err != nil {
			t.Errorf("%s: %v", strat, err)
		}
	}
}

func TestRunFillModes(t *testing.T) {
	quietStdout(t)
	path := smallTraceFile(t)
	for _, fill := range []string{"immediate", "on-broadcast"} {
		if err := run([]string{"-trace", path, "-neighborhood", "150", "-fill", fill, "-warmup", "0"}); err != nil {
			t.Errorf("%s: %v", fill, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	quietStdout(t)
	path := smallTraceFile(t)
	cases := [][]string{
		{},                      // neither -trace nor -synth
		{"-trace", "/nope.gob"}, // missing file
		{"-trace", path, "-strategy", "bogus"},
		{"-trace", path, "-storage", "bogus"},
		{"-trace", path, "-fill", "bogus"},
		{"-bogus"},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

func TestRunSynth(t *testing.T) {
	quietStdout(t)
	if err := run([]string{
		"-synth", "-synth-users", "300", "-synth-programs", "60", "-synth-days", "2",
		"-neighborhood", "150", "-warmup", "0",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExtensionFlags(t *testing.T) {
	quietStdout(t)
	path := smallTraceFile(t)
	if err := run([]string{
		"-trace", path, "-neighborhood", "150", "-storage", "1GB", "-warmup", "0",
		"-replicas", "2", "-prefix-segments", "4", "-max-streams", "4",
	}); err != nil {
		t.Error(err)
	}
	// Invalid values surface as config errors.
	if err := run([]string{"-trace", path, "-replicas", "-1"}); err == nil {
		t.Error("expected error for negative replicas")
	}
	if err := run([]string{"-trace", path, "-prefix-segments", "-1"}); err == nil {
		t.Error("expected error for negative prefix segments")
	}
	if err := run([]string{"-trace", path, "-max-streams", "-1"}); err == nil {
		t.Error("expected error for negative max streams")
	}
}

func TestRunLive(t *testing.T) {
	quietStdout(t)
	path := smallTraceFile(t)
	for _, strat := range []string{"lfu", "oracle"} {
		if err := run([]string{
			"-trace", path, "-neighborhood", "150", "-storage", "1GB",
			"-strategy", strat, "-warmup", "0", "-live", "1",
		}); err != nil {
			t.Errorf("%s: %v", strat, err)
		}
	}
}

// captureStdout runs fn with os.Stdout redirected into a buffer and
// returns what it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf strings.Builder
		_, _ = io.Copy(&buf, r)
		done <- buf.String()
	}()
	errRun := fn()
	os.Stdout = old
	w.Close()
	out := <-done
	r.Close()
	if errRun != nil {
		t.Fatal(errRun)
	}
	return out
}

// TestRunLiveParallelBreakdown: -parallel wires the shard worker pool
// and -live prints the shard count and per-neighborhood breakdown.
func TestRunLiveParallelBreakdown(t *testing.T) {
	path := smallTraceFile(t)
	out := captureStdout(t, func() error {
		return run([]string{
			"-trace", path, "-neighborhood", "100", "-storage", "1GB",
			"-warmup", "0", "-live", "1", "-parallel", "2",
		})
	})
	if !strings.Contains(out, "shards (one per neighborhood)") {
		t.Errorf("live output missing shard count line:\n%s", out)
	}
	if !strings.Contains(out, "per-neighborhood breakdown") {
		t.Errorf("live output missing per-neighborhood breakdown:\n%s", out)
	}
	// 300 users over 100-peer neighborhoods = 3 shard rows.
	for _, row := range []string{"   0 ", "   1 ", "   2 "} {
		if !strings.Contains(out, row) {
			t.Errorf("breakdown missing neighborhood row %q:\n%s", row, out)
		}
	}
}

// TestRunParallelMatchesSerial: the batch CLI path produces identical
// headline output at -parallel 1 and -parallel 4.
func TestRunParallelMatchesSerial(t *testing.T) {
	path := smallTraceFile(t)
	var outs []string
	for _, par := range []string{"1", "4"} {
		out := captureStdout(t, func() error {
			return run([]string{
				"-trace", path, "-neighborhood", "100", "-storage", "1GB",
				"-warmup", "0", "-parallel", par,
			})
		})
		// The elapsed line is wall-clock and legitimately differs.
		lines := strings.Split(out, "\n")
		kept := lines[:0]
		for _, l := range lines {
			if !strings.HasPrefix(l, "elapsed") {
				kept = append(kept, l)
			}
		}
		outs = append(outs, strings.Join(kept, "\n"))
	}
	if outs[0] != outs[1] {
		t.Errorf("-parallel 4 output differs from -parallel 1:\n--- serial ---\n%s\n--- parallel ---\n%s", outs[0], outs[1])
	}
}

func TestRunRegisteredStrategyName(t *testing.T) {
	quietStdout(t)
	if err := cablevod.RegisterStrategy("vodsim-test-lru", func(cablevod.Config) cablevod.Policy {
		return nopPolicy{}
	}); err != nil {
		t.Fatal(err)
	}
	path := smallTraceFile(t)
	if err := run([]string{"-trace", path, "-neighborhood", "150", "-strategy", "vodsim-test-lru", "-warmup", "0"}); err != nil {
		t.Error(err)
	}
}

// nopPolicy never caches anything.
type nopPolicy struct{}

func (nopPolicy) Name() string                                         { return "nop" }
func (nopPolicy) Advance(time.Duration)                                {}
func (nopPolicy) OnRequest(cablevod.ProgramID, time.Duration)          {}
func (nopPolicy) CandidateValue(cablevod.ProgramID, time.Duration) int { return -1 }
func (nopPolicy) OnAdmit(cablevod.ProgramID, time.Duration)            {}
func (nopPolicy) OnEvict(cablevod.ProgramID)                           {}
func (nopPolicy) EvictionOrder(func(cablevod.ProgramID, int) bool)     {}
