package main

import (
	"os"
	"path/filepath"
	"testing"

	"cablevod"
)

func quietStdout(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

func smallTraceFile(t *testing.T) string {
	t.Helper()
	opts := cablevod.DefaultTraceOptions()
	opts.Users, opts.Programs, opts.Days = 300, 60, 2
	tr, err := cablevod.GenerateTrace(opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.gob")
	if err := cablevod.SaveTrace(tr, path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunFromTraceFile(t *testing.T) {
	quietStdout(t)
	path := smallTraceFile(t)
	for _, strat := range []string{"lru", "lfu", "oracle", "global-lfu"} {
		if err := run([]string{
			"-trace", path, "-neighborhood", "150", "-storage", "1GB",
			"-strategy", strat, "-warmup", "0",
		}); err != nil {
			t.Errorf("%s: %v", strat, err)
		}
	}
}

func TestRunFillModes(t *testing.T) {
	quietStdout(t)
	path := smallTraceFile(t)
	for _, fill := range []string{"immediate", "on-broadcast"} {
		if err := run([]string{"-trace", path, "-neighborhood", "150", "-fill", fill, "-warmup", "0"}); err != nil {
			t.Errorf("%s: %v", fill, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	quietStdout(t)
	path := smallTraceFile(t)
	cases := [][]string{
		{},                      // neither -trace nor -synth
		{"-trace", "/nope.gob"}, // missing file
		{"-trace", path, "-strategy", "bogus"},
		{"-trace", path, "-storage", "bogus"},
		{"-trace", path, "-fill", "bogus"},
		{"-bogus"},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

func TestRunSynth(t *testing.T) {
	quietStdout(t)
	if err := run([]string{
		"-synth", "-synth-users", "300", "-synth-programs", "60", "-synth-days", "2",
		"-neighborhood", "150", "-warmup", "0",
	}); err != nil {
		t.Fatal(err)
	}
}
