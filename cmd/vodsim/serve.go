package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cablevod"
)

// serveRunOptions carries the CLI knobs of a -serve run.
type serveRunOptions struct {
	addr     string
	scenario string
	specFile string

	// trace provisions the ingest-mode plant (population + catalog);
	// feedDays > 0 additionally self-feeds it through POST /submit in
	// feedDays-sized batches (the -live composition).
	trace    *cablevod.Trace
	feedDays int

	users, programs, days int
	seed                  uint64
	checkpointHours       int
	accel                 float64
	json                  bool
	pprof                 bool
}

// runServe runs the live service daemon until SIGINT/SIGTERM, then
// prints the finalized result. A violated spec assertion is a command
// failure, exactly as in runSpecFile.
func runServe(cfg cablevod.Config, o serveRunOptions) error {
	if o.checkpointHours < 0 {
		return fmt.Errorf("negative -checkpoint %d", o.checkpointHours)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := cablevod.ServeOptions{
		Addr:         o.addr,
		Scenario:     o.scenario,
		SpecFile:     o.specFile,
		Checkpoint:   time.Duration(o.checkpointHours) * time.Hour,
		Acceleration: o.accel,
		OnCheckpoint: func(cp cablevod.ScenarioCheckpoint) { printCheckpoint(cp, o.json) },
		FinalOut:     os.Stdout,
		EnablePprof:  o.pprof,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "vodsim: "+format+"\n", args...)
		},
	}
	if o.scenario != "" {
		w := cablevod.DefaultTraceOptions()
		w.Users, w.Programs, w.Days, w.Seed = o.users, o.programs, o.days, o.seed
		opts.Workload = w
	}

	feederDone := make(chan struct{})
	if o.trace != nil && o.scenario == "" && o.specFile == "" {
		cfg.Subscribers = o.trace.Users()
		cfg.Catalog = cablevod.TraceCatalog(o.trace)
		// Handing the plant its own trace as the future makes daemon
		// state exports self-contained: POST /fork can race strategies
		// through the not-yet-submitted remainder.
		cfg.Future = o.trace
		if o.feedDays > 0 {
			tr := o.trace
			opts.OnListen = func(addr string) {
				go func() {
					defer close(feederDone)
					if err := feedTrace(ctx, addr, tr, o.feedDays, o.accel); err != nil {
						fmt.Fprintln(os.Stderr, "vodsim: feeder:", err)
					}
				}()
			}
		} else {
			close(feederDone)
		}
	} else {
		close(feederDone)
	}

	start := time.Now()
	sr, err := cablevod.Serve(ctx, cfg, opts)
	<-feederDone
	if err != nil {
		return err
	}
	if sr.Report != nil {
		fmt.Println()
		sr.Report.Render(os.Stdout)
		fmt.Println()
	}
	if sr.Result != nil {
		printResult(sr.Result, time.Since(start))
	}
	if sr.Report != nil && !sr.Report.Pass() {
		f := sr.Report.FirstFailure()
		return fmt.Errorf("scenario spec %s: assertion %s violated: %s", o.specFile, f.Label, f.Detail)
	}
	return nil
}

// maxFeedBatch bounds one self-feed POST /submit batch, keeping the
// request body well under the daemon's 32 MiB limit.
const maxFeedBatch = 100_000

// feedTrace streams the trace into the daemon's own POST /submit
// endpoint in windows of feedDays simulated days — the -serve -live
// composition. When accel > 0 the feed is throttled to that many
// virtual seconds per wall-clock second.
func feedTrace(ctx context.Context, addr string, tr *cablevod.Trace, feedDays int, accel float64) error {
	url := "http://" + addr + "/submit"
	client := &http.Client{}
	window := time.Duration(feedDays) * 24 * time.Hour
	recs := tr.Records
	for start := 0; start < len(recs); {
		if err := ctx.Err(); err != nil {
			return nil // daemon is shutting down; not a feed failure
		}
		windowEnd := recs[start].Start + window
		end := start
		for end < len(recs) && recs[end].Start < windowEnd && end-start < maxFeedBatch {
			end++
		}
		if err := postBatch(ctx, client, url, recs[start:end]); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("batch starting at record %d: %w", start, err)
		}
		if accel > 0 {
			span := recs[end-1].Start - recs[start].Start
			throttleSleep(ctx, time.Duration(float64(span)/accel))
		}
		start = end
	}
	fmt.Fprintln(os.Stderr, "vodsim: feeder: trace fully submitted; daemon serving until SIGTERM")
	return nil
}

// postBatch submits one record batch and surfaces the daemon's error
// body on a non-200 response.
func postBatch(ctx context.Context, client *http.Client, url string, recs []cablevod.Record) error {
	body, err := json.Marshal(struct {
		Records []cablevod.Record `json:"records"`
	}{recs})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("daemon rejected batch: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// throttleSleep sleeps for d or until ctx is cancelled.
func throttleSleep(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
