package main

import (
	"path/filepath"
	"strings"
	"testing"
)

const adversitySpec = "../../testdata/scenarios/node-outage.yaml"

// TestRunSnapshotForkCycle is the CLI's end-to-end adversity loop: a
// spec run saves its warm state mid-incident, -fork races strategies
// from that file with every arm rendered in the comparative report,
// and -snapshot-in alone resumes the interrupted run to completion.
func TestRunSnapshotForkCycle(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "outage.snap")
	out := captureStdout(t, func() error {
		return run([]string{"-scenario-file", adversitySpec, "-snapshot-out", snap, "-snapshot-at", "30"})
	})
	if !strings.Contains(out, "saved to "+snap) {
		t.Fatalf("run did not confirm the snapshot save:\n%s", out)
	}

	out = captureStdout(t, func() error {
		return run([]string{"-snapshot-in", snap, "-fork", "lfu, lru"})
	})
	for _, want := range []string{"STRATEGY", "HIT RATIO", "SAVINGS", "COAX P95", "lfu", "lru", "best post-fork savings"} {
		if !strings.Contains(out, want) {
			t.Errorf("fork report missing %q:\n%s", want, out)
		}
	}

	out = captureStdout(t, func() error {
		return run([]string{"-snapshot-in", snap})
	})
	if !strings.Contains(out, "resuming "+snap) || !strings.Contains(out, "savings") {
		t.Errorf("resume did not run to a final result:\n%s", out)
	}
}

// TestRunSnapshotFlagErrors pins the flag-composition contract.
func TestRunSnapshotFlagErrors(t *testing.T) {
	quietStdout(t)
	snap := filepath.Join(t.TempDir(), "x.snap")
	cases := [][]string{
		{"-fork", "lfu,lru"},                                     // fork without a state file
		{"-snapshot-out", snap, "-synth"},                        // snapshot-out outside scenario modes
		{"-scenario", "flash-crowd", "-snapshot-out", snap},      // missing -snapshot-at
		{"-snapshot-in", "/nonexistent.snap"},                    // unreadable state
		{"-snapshot-in", snap, "-synth"},                         // snapshot-in composes with nothing else
		{"-snapshot-in", "/nonexistent.snap", "-fork", " ,  , "}, // empty strategy list
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}
