package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"cablevod"
	"cablevod/internal/core"
	"cablevod/internal/hfc"
	"cablevod/internal/telemetry"
	"cablevod/internal/units"
	"cablevod/internal/universe"
)

// benchReport is the -bench-json payload: throughput of the Submit
// path at the repo's fixed benchmark plant (1000-subscriber
// neighborhoods, 10 GB per peer, LFU), serial vs sharded, plus the
// cost of attaching the telemetry collector. Committed snapshots of
// this report (BENCH_*.json) track performance across PRs.
type benchReport struct {
	Workload benchWorkload `json:"workload"`
	// Memory is the universe memory probe: steady-state engine heap on
	// a 100k-subscriber plant, normalized per 100k subscribers so the
	// mega tier's footprint can be projected from a committed report.
	// Measured before the throughput runs so the peak-RSS reading is
	// not inflated by their garbage.
	Memory    *universe.MemReport `json:"memory,omitempty"`
	Serial    benchRun            `json:"serial"`
	Sharded   benchRun            `json:"sharded"`
	Telemetry benchTelemetry      `json:"telemetry"`
}

type benchWorkload struct {
	Users    int    `json:"users"`
	Programs int    `json:"programs"`
	Days     int    `json:"days"`
	Seed     uint64 `json:"seed"`
	Records  int    `json:"records"`
}

type benchRun struct {
	Seconds         float64 `json:"seconds"`
	RecordsPerSec   float64 `json:"records_per_sec"`
	AllocsPerRecord float64 `json:"allocs_per_record"`
	BytesPerRecord  float64 `json:"bytes_per_record"`
}

type benchTelemetry struct {
	Seconds       float64 `json:"seconds"`
	RecordsPerSec float64 `json:"records_per_sec"`
	// OverheadPct compares the collected run against the sharded run
	// that preceded it (adjacent in time, so machine drift mostly
	// cancels). The CI gate for the 5% budget is the interleaved
	// BenchmarkSubmitWithTelemetry, not this single-shot figure.
	OverheadPct float64 `json:"overhead_pct"`
}

// benchConfig is the fixed plant every benchmark run uses, so
// committed reports are comparable across PRs.
func benchConfig(parallelism int) core.Config {
	return core.Config{
		Topology: hfc.Config{
			NeighborhoodSize: 1000,
			PerPeerStorage:   10 * units.GB,
		},
		Strategy:    core.StrategyLFU,
		WarmupDays:  2,
		Parallelism: parallelism,
	}
}

// benchOnce streams the whole trace through SubmitBatch and Close,
// returning wall time and per-record allocation figures.
func benchOnce(tr *cablevod.Trace, parallelism int, collect bool) (benchRun, error) {
	sys, err := core.NewSystem(benchConfig(parallelism), core.WorkloadFromTrace(tr))
	if err != nil {
		return benchRun{}, err
	}
	if collect {
		col, err := telemetry.NewCollector(telemetry.LatencyModel{}, sys.Shards())
		if err != nil {
			return benchRun{}, err
		}
		sys.SetCollector(col)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if err := sys.SubmitBatch(tr.Records); err != nil {
		return benchRun{}, err
	}
	if _, err := sys.Close(); err != nil {
		return benchRun{}, err
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := float64(len(tr.Records))
	return benchRun{
		Seconds:         elapsed.Seconds(),
		RecordsPerSec:   n / elapsed.Seconds(),
		AllocsPerRecord: float64(after.Mallocs-before.Mallocs) / n,
		BytesPerRecord:  float64(after.TotalAlloc-before.TotalAlloc) / n,
	}, nil
}

// runBenchJSON measures the memory footprint and the Submit path
// (serial, sharded, sharded with the telemetry collector attached) and
// prints one JSON report. When baseline names a committed report, the
// run becomes a gate: a >10% bytes/record regression is an error.
func runBenchJSON(tr *cablevod.Trace, w benchWorkload, baseline string) error {
	w.Records = len(tr.Records)
	fmt.Fprintf(os.Stderr, "vodsim: probing memory on the %s plant\n", universe.ProbeTier().Name)
	mem, err := universe.MemoryProbe(universe.ProbeTier(), benchConfig(0))
	if err != nil {
		return fmt.Errorf("memory probe: %w", err)
	}
	fmt.Fprintf(os.Stderr, "vodsim: benchmarking %d records (serial, sharded, sharded+telemetry)\n", w.Records)

	serial, err := benchOnce(tr, 1, false)
	if err != nil {
		return fmt.Errorf("serial bench: %w", err)
	}
	sharded, err := benchOnce(tr, 0, false)
	if err != nil {
		return fmt.Errorf("sharded bench: %w", err)
	}
	collected, err := benchOnce(tr, 0, true)
	if err != nil {
		return fmt.Errorf("telemetry bench: %w", err)
	}

	report := benchReport{
		Workload: w,
		Memory:   mem,
		Serial:   serial,
		Sharded:  sharded,
		Telemetry: benchTelemetry{
			Seconds:       collected.Seconds,
			RecordsPerSec: collected.RecordsPerSec,
			OverheadPct:   100 * (collected.Seconds - sharded.Seconds) / sharded.Seconds,
		},
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	if baseline != "" {
		return checkBenchBaseline(report, baseline)
	}
	return nil
}

// benchBudgetPct is the allowed bytes/record growth over a committed
// baseline report before -bench-baseline fails the run.
const benchBudgetPct = 10

// checkBenchBaseline enforces the memory budget: each measured
// bytes/record figure may exceed the committed baseline's by at most
// benchBudgetPct. Throughput is tracked but not gated here — wall
// clock varies with the machine; allocation volume does not.
func checkBenchBaseline(report benchReport, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bench baseline: %w", err)
	}
	var base benchReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("bench baseline %s: %w", path, err)
	}
	if base.Workload != report.Workload {
		return fmt.Errorf("bench baseline %s measures workload %+v, this run measured %+v — regenerate the baseline or match the -synth flags",
			path, base.Workload, report.Workload)
	}
	check := func(name string, got, want float64) error {
		if want <= 0 {
			return nil // baseline predates this metric
		}
		limit := want * (1 + benchBudgetPct/100.0)
		if got > limit {
			return fmt.Errorf("memory budget exceeded: %s bytes/record %.1f is %.1f%% over the %s baseline %.1f (budget %d%%)",
				name, got, 100*(got/want-1), path, want, benchBudgetPct)
		}
		return nil
	}
	if err := check("serial", report.Serial.BytesPerRecord, base.Serial.BytesPerRecord); err != nil {
		return err
	}
	if err := check("sharded", report.Sharded.BytesPerRecord, base.Sharded.BytesPerRecord); err != nil {
		return err
	}
	if report.Memory != nil && base.Memory != nil {
		if err := check("probe", report.Memory.BytesPerRecord, base.Memory.BytesPerRecord); err != nil {
			return err
		}
		if err := check("probe heap/100k", report.Memory.HeapPer100k, base.Memory.HeapPer100k); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "vodsim: memory budget ok against %s (within %d%%)\n", path, benchBudgetPct)
	return nil
}
