package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"cablevod"
	"cablevod/internal/core"
	"cablevod/internal/hfc"
	"cablevod/internal/perf"
	"cablevod/internal/telemetry"
	"cablevod/internal/units"
	"cablevod/internal/universe"
)

// benchReport is the -bench-json payload: throughput of the Submit
// path at the repo's fixed benchmark plant (1000-subscriber
// neighborhoods, 10 GB per peer, LFU), serial vs sharded, plus the
// cost of attaching the telemetry collector. Committed snapshots of
// this report (BENCH_*.json) track performance across PRs.
type benchReport struct {
	Workload benchWorkload `json:"workload"`
	// Memory is the universe memory probe: steady-state engine heap on
	// a 100k-subscriber plant, normalized per 100k subscribers so the
	// mega tier's footprint can be projected from a committed report.
	// Measured before the throughput runs so the peak-RSS reading is
	// not inflated by their garbage.
	Memory    *universe.MemReport `json:"memory,omitempty"`
	Serial    benchRun            `json:"serial"`
	Sharded   benchRun            `json:"sharded"`
	Telemetry benchTelemetry      `json:"telemetry"`
}

type benchWorkload struct {
	Users    int    `json:"users"`
	Programs int    `json:"programs"`
	Days     int    `json:"days"`
	Seed     uint64 `json:"seed"`
	Records  int    `json:"records"`
}

type benchRun struct {
	Seconds         float64 `json:"seconds"`
	RecordsPerSec   float64 `json:"records_per_sec"`
	AllocsPerRecord float64 `json:"allocs_per_record"`
	BytesPerRecord  float64 `json:"bytes_per_record"`
}

type benchTelemetry struct {
	Seconds       float64 `json:"seconds"`
	RecordsPerSec float64 `json:"records_per_sec"`
	// OverheadPct is the collector's cost over the bare sharded engine,
	// measured as the best ratio across benchOverheadPairs interleaved
	// sharded/collected pairs (legs alternate order across pairs, so
	// machine frequency drift hits both legs about equally and the
	// per-pair ratio survives it; noise only ever adds time, so the
	// least-disturbed pair bounds the true cost). The CI gate for the
	// 5% budget is the same scheme in BenchmarkSubmitWithTelemetry.
	OverheadPct float64 `json:"overhead_pct"`
}

// benchOverheadPairs is how many interleaved sharded/collected pairs
// the -bench-json telemetry overhead estimate runs.
const benchOverheadPairs = 3

// benchSerialRuns is how many serial passes -bench-json takes; the
// reported serial figure is the fastest. Scheduler and frequency noise
// on a shared machine only ever add time, so the least-disturbed pass
// is the noise-robust estimate of the engine's true speed (the same
// judgment the interleaved benchmarks in bench_test.go apply).
const benchSerialRuns = 3

// benchConfig is the fixed plant every benchmark run uses, so
// committed reports are comparable across PRs.
func benchConfig(parallelism int) core.Config {
	return core.Config{
		Topology: hfc.Config{
			NeighborhoodSize: 1000,
			PerPeerStorage:   10 * units.GB,
		},
		Strategy:    core.StrategyLFU,
		WarmupDays:  2,
		Parallelism: parallelism,
	}
}

// benchOnce streams the whole trace through SubmitBatch and Close,
// returning wall time and per-record allocation figures.
func benchOnce(tr *cablevod.Trace, parallelism int, collect bool) (benchRun, error) {
	sys, err := core.NewSystem(benchConfig(parallelism), core.WorkloadFromTrace(tr))
	if err != nil {
		return benchRun{}, err
	}
	if collect {
		col, err := telemetry.NewCollector(telemetry.LatencyModel{}, sys.Shards())
		if err != nil {
			return benchRun{}, err
		}
		sys.SetCollector(col)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if err := sys.SubmitBatch(tr.Records); err != nil {
		return benchRun{}, err
	}
	if _, err := sys.Close(); err != nil {
		return benchRun{}, err
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := float64(len(tr.Records))
	return benchRun{
		Seconds:         elapsed.Seconds(),
		RecordsPerSec:   n / elapsed.Seconds(),
		AllocsPerRecord: float64(after.Mallocs-before.Mallocs) / n,
		BytesPerRecord:  float64(after.TotalAlloc-before.TotalAlloc) / n,
	}, nil
}

// runBenchJSON measures the memory footprint and the Submit path
// (serial, sharded, sharded with the telemetry collector attached) and
// prints one JSON report, followed by a one-line comparison against
// the newest committed BENCH_*.json in the working directory. When
// baseline names a committed report, the run becomes a gate: a >10%
// bytes/record regression is an error. floorPct > 0 additionally gates
// throughput: serial records/s more than floorPct percent below the
// best committed snapshot is an error. profileDir captures CPU/heap
// profiles spanning just the three throughput runs (not the memory
// probe, whose GC churn would drown the Submit path).
func runBenchJSON(tr *cablevod.Trace, w benchWorkload, baseline, profileDir string, floorPct float64) error {
	w.Records = len(tr.Records)
	fmt.Fprintf(os.Stderr, "vodsim: probing memory on the %s plant\n", universe.ProbeTier().Name)
	mem, err := universe.MemoryProbe(universe.ProbeTier(), benchConfig(0))
	if err != nil {
		return fmt.Errorf("memory probe: %w", err)
	}
	fmt.Fprintf(os.Stderr, "vodsim: benchmarking %d records (best of %d serial, then %d interleaved sharded/telemetry pairs)\n",
		w.Records, benchSerialRuns, benchOverheadPairs)

	stopProfile := func() error { return nil }
	if profileDir != "" {
		if stopProfile, err = startProfile(profileDir); err != nil {
			return err
		}
	}
	var serial benchRun
	for run := 0; run < benchSerialRuns; run++ {
		s, err := benchOnce(tr, 1, false)
		if err != nil {
			return fmt.Errorf("serial bench: %w", err)
		}
		if run == 0 || s.Seconds < serial.Seconds {
			serial = s
		}
	}
	// Interleaved sharded/collected pairs: the reported sharded and
	// telemetry runs are each leg's fastest, and the overhead is the
	// best per-pair ratio (see benchTelemetry.OverheadPct).
	var sharded, collected benchRun
	bestRatio := 0.0
	for pair := 0; pair < benchOverheadPairs; pair++ {
		var bare, teled benchRun
		if pair%2 == 0 {
			if bare, err = benchOnce(tr, 0, false); err == nil {
				teled, err = benchOnce(tr, 0, true)
			}
		} else {
			if teled, err = benchOnce(tr, 0, true); err == nil {
				bare, err = benchOnce(tr, 0, false)
			}
		}
		if err != nil {
			return fmt.Errorf("telemetry bench pair %d: %w", pair, err)
		}
		if pair == 0 || bare.Seconds < sharded.Seconds {
			sharded = bare
		}
		if pair == 0 || teled.Seconds < collected.Seconds {
			collected = teled
		}
		if r := teled.Seconds / bare.Seconds; pair == 0 || r < bestRatio {
			bestRatio = r
		}
	}
	if err := stopProfile(); err != nil {
		return err
	}

	report := benchReport{
		Workload: w,
		Memory:   mem,
		Serial:   serial,
		Sharded:  sharded,
		Telemetry: benchTelemetry{
			Seconds:       collected.Seconds,
			RecordsPerSec: collected.RecordsPerSec,
			OverheadPct:   100 * (bestRatio - 1),
		},
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	if err := benchTrajectory(out, floorPct); err != nil {
		return err
	}
	if baseline != "" {
		return checkBenchBaseline(report, baseline)
	}
	return nil
}

// benchTrajectory compares the just-printed report (its marshaled
// bytes, so the perf ledger and this command can never disagree on the
// schema) against the committed BENCH_*.json series in the working
// directory: a one-line delta summary always, and the throughput floor
// gate when floorPct > 0.
func benchTrajectory(reportJSON []byte, floorPct float64) error {
	var pr perf.Report
	if err := json.Unmarshal(reportJSON, &pr); err != nil {
		return err
	}
	traj, err := perf.LoadTrajectory(".")
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "vodsim: "+traj.SummaryLine(pr))
	if floorPct > 0 {
		if err := traj.CheckFloor(pr, floorPct); err != nil {
			return err
		}
		if best := traj.Best(); best != nil {
			fmt.Fprintf(os.Stderr, "vodsim: throughput floor ok against %s (within %.0f%%)\n", best.Name, floorPct)
		}
	}
	return nil
}

// benchBudgetPct is the allowed bytes/record growth over a committed
// baseline report before -bench-baseline fails the run.
const benchBudgetPct = 10

// checkBenchBaseline enforces the memory budget: each measured
// bytes/record figure may exceed the committed baseline's by at most
// benchBudgetPct. Throughput is tracked but not gated here — wall
// clock varies with the machine; allocation volume does not.
func checkBenchBaseline(report benchReport, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bench baseline: %w", err)
	}
	var base benchReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("bench baseline %s: %w", path, err)
	}
	if base.Workload != report.Workload {
		return fmt.Errorf("bench baseline %s measures workload %+v, this run measured %+v — regenerate the baseline or match the -synth flags",
			path, base.Workload, report.Workload)
	}
	check := func(name string, got, want float64) error {
		if want <= 0 {
			return nil // baseline predates this metric
		}
		limit := want * (1 + benchBudgetPct/100.0)
		if got > limit {
			return fmt.Errorf("memory budget exceeded: %s bytes/record %.1f is %.1f%% over the %s baseline %.1f (budget %d%%)",
				name, got, 100*(got/want-1), path, want, benchBudgetPct)
		}
		return nil
	}
	if err := check("serial", report.Serial.BytesPerRecord, base.Serial.BytesPerRecord); err != nil {
		return err
	}
	if err := check("sharded", report.Sharded.BytesPerRecord, base.Sharded.BytesPerRecord); err != nil {
		return err
	}
	if report.Memory != nil && base.Memory != nil {
		if err := check("probe", report.Memory.BytesPerRecord, base.Memory.BytesPerRecord); err != nil {
			return err
		}
		if err := check("probe heap/100k", report.Memory.HeapPer100k, base.Memory.HeapPer100k); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "vodsim: memory budget ok against %s (within %d%%)\n", path, benchBudgetPct)
	return nil
}
