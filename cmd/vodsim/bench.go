package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"cablevod"
	"cablevod/internal/core"
	"cablevod/internal/hfc"
	"cablevod/internal/telemetry"
	"cablevod/internal/units"
)

// benchReport is the -bench-json payload: throughput of the Submit
// path at the repo's fixed benchmark plant (1000-subscriber
// neighborhoods, 10 GB per peer, LFU), serial vs sharded, plus the
// cost of attaching the telemetry collector. Committed snapshots of
// this report (BENCH_*.json) track performance across PRs.
type benchReport struct {
	Workload  benchWorkload  `json:"workload"`
	Serial    benchRun       `json:"serial"`
	Sharded   benchRun       `json:"sharded"`
	Telemetry benchTelemetry `json:"telemetry"`
}

type benchWorkload struct {
	Users    int    `json:"users"`
	Programs int    `json:"programs"`
	Days     int    `json:"days"`
	Seed     uint64 `json:"seed"`
	Records  int    `json:"records"`
}

type benchRun struct {
	Seconds         float64 `json:"seconds"`
	RecordsPerSec   float64 `json:"records_per_sec"`
	AllocsPerRecord float64 `json:"allocs_per_record"`
	BytesPerRecord  float64 `json:"bytes_per_record"`
}

type benchTelemetry struct {
	Seconds       float64 `json:"seconds"`
	RecordsPerSec float64 `json:"records_per_sec"`
	// OverheadPct compares the collected run against the sharded run
	// that preceded it (adjacent in time, so machine drift mostly
	// cancels). The CI gate for the 5% budget is the interleaved
	// BenchmarkSubmitWithTelemetry, not this single-shot figure.
	OverheadPct float64 `json:"overhead_pct"`
}

// benchConfig is the fixed plant every benchmark run uses, so
// committed reports are comparable across PRs.
func benchConfig(parallelism int) core.Config {
	return core.Config{
		Topology: hfc.Config{
			NeighborhoodSize: 1000,
			PerPeerStorage:   10 * units.GB,
		},
		Strategy:    core.StrategyLFU,
		WarmupDays:  2,
		Parallelism: parallelism,
	}
}

// benchOnce streams the whole trace through SubmitBatch and Close,
// returning wall time and per-record allocation figures.
func benchOnce(tr *cablevod.Trace, parallelism int, collect bool) (benchRun, error) {
	sys, err := core.NewSystem(benchConfig(parallelism), core.WorkloadFromTrace(tr))
	if err != nil {
		return benchRun{}, err
	}
	if collect {
		col, err := telemetry.NewCollector(telemetry.LatencyModel{}, sys.Shards())
		if err != nil {
			return benchRun{}, err
		}
		sys.SetCollector(col)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if err := sys.SubmitBatch(tr.Records); err != nil {
		return benchRun{}, err
	}
	if _, err := sys.Close(); err != nil {
		return benchRun{}, err
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := float64(len(tr.Records))
	return benchRun{
		Seconds:         elapsed.Seconds(),
		RecordsPerSec:   n / elapsed.Seconds(),
		AllocsPerRecord: float64(after.Mallocs-before.Mallocs) / n,
		BytesPerRecord:  float64(after.TotalAlloc-before.TotalAlloc) / n,
	}, nil
}

// runBenchJSON measures the Submit path serial, sharded, and sharded
// with the telemetry collector attached, and prints one JSON report.
func runBenchJSON(tr *cablevod.Trace, w benchWorkload) error {
	w.Records = len(tr.Records)
	fmt.Fprintf(os.Stderr, "vodsim: benchmarking %d records (serial, sharded, sharded+telemetry)\n", w.Records)

	serial, err := benchOnce(tr, 1, false)
	if err != nil {
		return fmt.Errorf("serial bench: %w", err)
	}
	sharded, err := benchOnce(tr, 0, false)
	if err != nil {
		return fmt.Errorf("sharded bench: %w", err)
	}
	collected, err := benchOnce(tr, 0, true)
	if err != nil {
		return fmt.Errorf("telemetry bench: %w", err)
	}

	report := benchReport{
		Workload: w,
		Serial:   serial,
		Sharded:  sharded,
		Telemetry: benchTelemetry{
			Seconds:       collected.Seconds,
			RecordsPerSec: collected.RecordsPerSec,
			OverheadPct:   100 * (collected.Seconds - sharded.Seconds) / sharded.Seconds,
		},
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}
