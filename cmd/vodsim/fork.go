package main

import (
	"fmt"
	"strings"
	"time"

	"cablevod"
)

// armSnapshot wires the -snapshot-out/-snapshot-at flags into a
// scenario or spec run's options: the mid-run export is saved to file
// with the remaining workload embedded, so the file later resumes
// (-snapshot-in) or forks (-snapshot-in -fork) standalone.
func armSnapshot(at *time.Duration, on *func(*cablevod.SystemState) error, future *bool, out string, atHours int) {
	if out == "" {
		return
	}
	*at = time.Duration(atHours) * time.Hour
	*future = true
	*on = func(st *cablevod.SystemState) error {
		if err := cablevod.SaveState(out, st); err != nil {
			return err
		}
		fmt.Printf("snapshot: state at %.0fh (%d records in, strategy %s) saved to %s\n",
			st.At().Hours(), st.Submitted, st.Strategy(), out)
		return nil
	}
}

// runResume restores a saved engine state and replays its embedded
// workload tail to the end, printing the final result — the
// checkpointed-run composition: snapshot once, finish later.
func runResume(path string, parallel int) error {
	st, err := cablevod.LoadState(path)
	if err != nil {
		return err
	}
	tail, err := cablevod.FutureTail(st)
	if err != nil {
		return err
	}
	fmt.Printf("resuming %s: strategy %s at %.0fh, %d records in, %d to replay\n",
		path, st.Strategy(), st.At().Hours(), st.Submitted, len(tail))

	start := time.Now()
	sys, err := cablevod.Restore(st, cablevod.RestoreOptions{Parallelism: parallel})
	if err != nil {
		return err
	}
	if err := sys.SubmitBatch(tail); err != nil {
		return err
	}
	res, err := sys.Close()
	if err != nil {
		return err
	}
	printResult(res, time.Since(start))
	return nil
}

// runFork races one restored engine per strategy from the same saved
// state through the same workload tail and prints the comparative
// report: post-fork hit ratio, savings, and p95 coax through the
// incident window, per strategy.
func runFork(path, list string, parallel int) error {
	names := splitStrategies(list)
	if len(names) == 0 {
		return fmt.Errorf("-fork needs a comma-separated strategy list, e.g. \"lfu,lru,gdsf\"")
	}
	st, err := cablevod.LoadState(path)
	if err != nil {
		return err
	}
	tail, err := cablevod.FutureTail(st)
	if err != nil {
		return err
	}
	fmt.Printf("forking %s: %d arms from %s at %.0fh, replaying %d records each\n",
		path, len(names), st.Strategy(), st.At().Hours(), len(tail))

	start := time.Now()
	report, err := cablevod.RunForks(st, names, tail, cablevod.ForkOptions{Parallelism: parallel})
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(report.Table())
	fmt.Printf("\nelapsed %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// splitStrategies parses the -fork list, tolerating spaces and empty
// segments.
func splitStrategies(list string) []string {
	var out []string
	for _, s := range strings.Split(list, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}
