// Command vodsim runs one cooperative-cache VoD simulation over a trace
// (from a file or freshly synthesized) and prints the paper's metrics:
// peak-hour server load with 5%/95% quantiles, savings against the
// uncached baseline, hit ratios, and coax utilization.
//
// Usage:
//
//	vodsim -synth -neighborhood 1000 -storage 10GB -strategy lfu
//	vodsim -strategy-list                        # registered caching strategies
//	vodsim -synth -strategy gdsf                 # pick one from the zoo
//	vodsim -trace trace.gob -strategy oracle -warmup 7
//	vodsim -synth -replicas 2 -prefix-segments 4 -max-streams 4
//	vodsim -synth -live 1        # drive the online engine, daily snapshots
//	vodsim -synth -parallel 8    # run neighborhood shards on 8 workers
//	vodsim -scenario-list        # registered live-workload scenarios
//	vodsim -scenario flash-crowd -checkpoint 6   # drive one, 6h checkpoints
//	vodsim -scenario premiere -snapshot-json     # machine-readable checkpoints
//	vodsim -scenario-file testdata/scenarios/flash-crowd.yaml  # declarative spec + assertions
//	vodsim -serve :8080 -scenario flash-crowd -accel 86400     # live daemon: /metrics, /snapshot, ...
//	vodsim -serve :8080 -synth -live 1                         # ingest daemon self-fed day by day
//	vodsim -synth -synth-days 7 -bench-json                    # Submit-path throughput report (JSON)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cablevod"
	"cablevod/internal/core"
	"cablevod/internal/units"
	"cablevod/internal/universe"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vodsim:", err)
		os.Exit(1)
	}
}

func run(args []string) (runErr error) {
	fs := flag.NewFlagSet("vodsim", flag.ContinueOnError)
	var (
		path     = fs.String("trace", "", "trace file (.csv or .gob)")
		synth    = fs.Bool("synth", false, "synthesize the default trace instead of loading one")
		days     = fs.Int("synth-days", 14, "days for -synth")
		users    = fs.Int("synth-users", 41_698, "users for -synth")
		programs = fs.Int("synth-programs", 8_278, "programs for -synth")
		seed     = fs.Uint64("seed", 1, "seed for -synth")

		neighborhood = fs.Int("neighborhood", 1000, "subscribers per headend")
		storage      = fs.String("storage", "10GB", "per-peer cache contribution")
		strategyName = fs.String("strategy", "lfu", "caching strategy (see -strategy-list)")
		strategyList = fs.Bool("strategy-list", false, "list registered caching strategies and exit")
		history      = fs.Duration("history", 72*time.Hour, "LFU history window")
		lag          = fs.Duration("lag", 0, "global popularity publication lag")
		warmup       = fs.Int("warmup", 7, "days excluded from statistics")
		fillMode     = fs.String("fill", "immediate", "segment availability: immediate or on-broadcast")
		replicas     = fs.Int("replicas", 1, "copies kept per cached segment")
		prefixSegs   = fs.Int("prefix-segments", 0, "cache only the first N segments per program (0 = whole program)")
		maxStreams   = fs.Int("max-streams", 0, "concurrent stream limit per set-top box (0 = default 2)")
		live         = fs.Int("live", 0, "drive the online engine, printing a snapshot every N simulated days")
		parallel     = fs.Int("parallel", 0, "worker pool for concurrent neighborhood shards (0 = GOMAXPROCS, 1 = serial)")

		serveAddr     = fs.String("serve", "", "run as a live service daemon on ADDR (e.g. :8080): /metrics, /snapshot, /healthz, /submit, /scenario/status; composes with -scenario, -scenario-file, or a -synth/-trace ingest plant (add -live N to self-feed it in N-day batches)")
		scenarioName  = fs.String("scenario", "", "drive a registered live-workload scenario (see -scenario-list); sized by the -synth-* flags")
		scenarioFile  = fs.String("scenario-file", "", "run a declarative scenario spec (YAML/JSON, see SCENARIOS.md) and gate on its assertions")
		scenarioList  = fs.Bool("scenario-list", false, "list registered scenarios and exit")
		checkpoint    = fs.Int("checkpoint", 24, "simulated hours between scenario checkpoints (0 = none; a -scenario-file spec with assertions must then set its own cadence — assertions never pass over zero checkpoints)")
		accel         = fs.Float64("accel", 0, "cap scenario virtual time at N seconds per wall second (0 = unthrottled)")
		snapJSON      = fs.Bool("snapshot-json", false, "print snapshots and checkpoints as JSON lines")
		snapOut       = fs.String("snapshot-out", "", "save the engine state to FILE mid-run at -snapshot-at (with -scenario or -scenario-file); the file embeds the remaining workload, so it resumes or forks standalone")
		snapAt        = fs.Int("snapshot-at", 0, "simulated hour of the -snapshot-out state export")
		snapIn        = fs.String("snapshot-in", "", "load a state file saved by -snapshot-out and resume the run to the end (or race strategies from it: -fork)")
		forkList      = fs.String("fork", "", "comma-separated caching strategies to fork from the -snapshot-in state and race through the same incident, printing a comparative report")
		benchJSON     = fs.Bool("bench-json", false, "benchmark the Submit path (serial, sharded, sharded+telemetry) on the fixed bench plant and print one JSON report")
		benchBaseline = fs.String("bench-baseline", "", "with -bench-json: compare against a committed BENCH_*.json and fail on a >10% bytes/record regression")
		benchFloor    = fs.Float64("bench-floor", 0, "with -bench-json: fail if serial records/s falls more than PCT percent below the best committed BENCH_*.json in the working directory (0 = no gate)")

		profileDir = fs.String("profile-dir", "", "capture cpu.pprof and heap.pprof for the run into DIR and print the top-10 hot symbols (bounded runs only; with -serve use -pprof)")
		pprofFlag  = fs.Bool("pprof", false, "with -serve: expose Go's /debug/pprof endpoints on the daemon for live profiling")

		scale      = fs.String("scale", "", "run a universe scale tier (see -scale-list); the tier sizes the plant and workload, engine flags (-strategy, -storage, ...) still apply, and explicit -seed/-synth-days override the tier")
		scaleList  = fs.Bool("scale-list", false, "list universe scale tiers and exit")
		longrun    = fs.Bool("longrun", false, "with -scale: split the run into resumable checkpointed legs; re-run the same command to resume")
		longrunDir = fs.String("longrun-dir", "", "checkpoint directory for -longrun (default .longrun-<tier>)")
		legHours   = fs.Int("leg", 24, "simulated hours per -longrun leg (checkpoint cadence)")
		maxLegs    = fs.Int("legs", 0, "with -longrun: stop after N legs this invocation (0 = run to completion)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pprofFlag && *serveAddr == "" {
		return fmt.Errorf("-pprof exposes live profiles on the daemon; it needs -serve ADDR")
	}
	if *profileDir != "" && *serveAddr != "" {
		return fmt.Errorf("-profile-dir captures a bounded run; profile a daemon live via -pprof instead")
	}
	// stopProfile finalizes a -profile-dir capture; the deferred call
	// covers every run path's return.
	stopProfile := func() error { return nil }
	defer func() {
		if perr := stopProfile(); perr != nil && runErr == nil {
			runErr = perr
		}
	}()

	if *scenarioList {
		for _, info := range cablevod.ListScenarios() {
			fmt.Printf("%-16s %s\n", info.Name, info.Description)
		}
		return nil
	}
	if *strategyList {
		for _, info := range cablevod.ListStrategies() {
			fmt.Printf("%-12s %s\n", info.Name, info.Description)
		}
		return nil
	}
	if *scaleList {
		for _, t := range universe.Tiers() {
			fmt.Printf("%-10s %s\n", t.Name, t.Description)
		}
		return nil
	}
	if *longrun && *scale == "" {
		return fmt.Errorf("-longrun splits a universe run into legs; it needs -scale TIER")
	}
	if *scale != "" {
		if *synth || *path != "" || *scenarioName != "" || *scenarioFile != "" || *serveAddr != "" || *live > 0 || *benchJSON || *snapIn != "" || *snapOut != "" {
			return fmt.Errorf("-scale builds its own plant and workload; it does not compose with -trace, -synth, -scenario, -scenario-file, -serve, -live, -bench-json, or the snapshot flags")
		}
	}

	if *snapIn != "" {
		if *scenarioName != "" || *scenarioFile != "" || *synth || *path != "" || *serveAddr != "" {
			return fmt.Errorf("-snapshot-in replays a saved engine state; it composes only with -fork and -parallel")
		}
		if *forkList != "" {
			return runFork(*snapIn, *forkList, *parallel)
		}
		return runResume(*snapIn, *parallel)
	}
	if *forkList != "" {
		return fmt.Errorf("-fork needs a warm state to branch from: -snapshot-in FILE")
	}
	if *snapOut != "" {
		if *scenarioName == "" && *scenarioFile == "" {
			return fmt.Errorf("-snapshot-out captures a mid-run scenario state; it needs -scenario or -scenario-file")
		}
		if *snapAt <= 0 {
			return fmt.Errorf("-snapshot-out needs a positive -snapshot-at hour")
		}
	}

	var tr *cablevod.Trace
	var err error
	switch {
	case *scenarioName != "" && *scenarioFile != "":
		return fmt.Errorf("-scenario and -scenario-file are mutually exclusive")
	case *scale != "":
		// The universe tier generates its own workload lazily; no trace.
	case *scenarioName != "", *scenarioFile != "":
		// The scenario generates its own workload lazily; no trace.
	case *synth:
		opts := cablevod.DefaultTraceOptions()
		opts.Days = *days
		opts.Users = *users
		opts.Programs = *programs
		opts.Seed = *seed
		tr, err = cablevod.GenerateTrace(opts)
	case *path != "":
		tr, err = cablevod.LoadTrace(*path)
	default:
		if *serveAddr != "" {
			return fmt.Errorf("-serve needs a workload: -scenario, -scenario-file, or a -synth/-trace plant for ingest")
		}
		return fmt.Errorf("need -trace FILE or -synth")
	}
	if err != nil {
		return err
	}

	if *benchJSON {
		if tr == nil {
			return fmt.Errorf("-bench-json needs a workload: -synth or -trace FILE")
		}
		return runBenchJSON(tr, benchWorkload{
			Users: *users, Programs: *programs, Days: *days, Seed: *seed,
		}, *benchBaseline, *profileDir, *benchFloor)
	}

	// Built-in names parse to the enum; anything else must be a
	// registered custom strategy, selected by name.
	var strategy cablevod.Strategy
	var customName string
	if parsed, err := core.ParseStrategy(*strategyName); err == nil {
		strategy = parsed
	} else if registered(*strategyName) {
		customName = *strategyName
	} else {
		return fmt.Errorf("unknown strategy %q (see -strategy-list; registered: %s)",
			*strategyName, strings.Join(cablevod.Strategies(), ", "))
	}
	perPeer, err := units.ParseByteSize(*storage)
	if err != nil {
		return err
	}
	var fill cablevod.FillMode
	switch *fillMode {
	case "immediate":
		fill = cablevod.FillImmediate
	case "on-broadcast":
		fill = cablevod.FillOnBroadcast
	default:
		return fmt.Errorf("unknown fill mode %q", *fillMode)
	}

	cfg := cablevod.Config{
		NeighborhoodSize:  *neighborhood,
		PerPeerStorage:    perPeer,
		MaxStreamsPerPeer: *maxStreams,
		Strategy:          strategy,
		StrategyName:      customName,
		LFUHistory:        *history,
		GlobalLag:         *lag,
		Fill:              fill,
		Replicas:          *replicas,
		PrefixSegments:    *prefixSegs,
		WarmupDays:        *warmup,
		Parallelism:       *parallel,
	}
	// The capture starts after workload synthesis so trace generation
	// does not drown the Submit path in the CPU profile.
	if *profileDir != "" {
		stopProfile, err = startProfile(*profileDir)
		if err != nil {
			return err
		}
	}

	if *scale != "" {
		tier, err := universe.Tier(*scale)
		if err != nil {
			return err
		}
		// Explicitly-passed -seed and -synth-days override the tier's
		// workload values; plant flags do not — the tier defines the
		// plant, that being its point.
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "seed":
				tier.Seed = *seed
			case "synth-days":
				tier.Days = *days
			}
		})
		if err := tier.Validate(); err != nil {
			return err
		}
		if *longrun {
			return runScaleLongRun(tier, cfg, *longrunDir, *legHours, *maxLegs)
		}
		start := time.Now()
		res, err := runScale(tier, cfg)
		if err != nil {
			return err
		}
		printResult(res, time.Since(start))
		return nil
	}

	if *serveAddr != "" {
		return runServe(cfg, serveRunOptions{
			addr: *serveAddr, scenario: *scenarioName, specFile: *scenarioFile,
			trace: tr, feedDays: *live,
			users: *users, programs: *programs, days: *days, seed: *seed,
			checkpointHours: *checkpoint, accel: *accel, json: *snapJSON,
			pprof: *pprofFlag,
		})
	}

	start := time.Now()
	var res *cablevod.Result
	switch {
	case *scenarioFile != "":
		res, err = runSpecFile(cfg, *scenarioFile, specFileRunOptions{
			fallback: time.Duration(*checkpoint) * time.Hour,
			accel:    *accel, json: *snapJSON,
			snapshotOut: *snapOut, snapshotAtHours: *snapAt,
		})
	case *scenarioName != "":
		res, err = runScenario(cfg, *scenarioName, scenarioRunOptions{
			users: *users, programs: *programs, days: *days, seed: *seed,
			checkpointHours: *checkpoint, accel: *accel, json: *snapJSON,
			snapshotOut: *snapOut, snapshotAtHours: *snapAt,
		})
	case *live > 0:
		res, err = runLive(cfg, tr, *live, *snapJSON)
	default:
		res, err = cablevod.Run(cfg, tr)
	}
	if err != nil {
		return err
	}
	printResult(res, time.Since(start))
	return nil
}

// scenarioRunOptions carries the CLI knobs of a -scenario run.
type scenarioRunOptions struct {
	users, programs, days int
	seed                  uint64
	checkpointHours       int
	accel                 float64
	json                  bool
	snapshotOut           string
	snapshotAtHours       int
}

// runScenario drives a registered scenario through the live engine,
// printing each checkpoint as it is taken.
func runScenario(cfg cablevod.Config, name string, o scenarioRunOptions) (*cablevod.Result, error) {
	if o.checkpointHours < 0 {
		return nil, fmt.Errorf("negative -checkpoint %d", o.checkpointHours)
	}
	workload := cablevod.DefaultTraceOptions()
	workload.Users, workload.Programs, workload.Days, workload.Seed = o.users, o.programs, o.days, o.seed
	opts := cablevod.ScenarioOptions{
		Workload:     workload,
		Checkpoint:   time.Duration(o.checkpointHours) * time.Hour,
		Acceleration: o.accel,
		OnCheckpoint: func(cp cablevod.ScenarioCheckpoint) { printCheckpoint(cp, o.json) },
	}
	armSnapshot(&opts.SnapshotAt, &opts.OnSnapshot, &opts.SnapshotFuture, o.snapshotOut, o.snapshotAtHours)
	res, _, err := cablevod.RunScenario(name, cfg, opts)
	return res, err
}

// specFileRunOptions carries the CLI knobs of a -scenario-file run.
type specFileRunOptions struct {
	fallback        time.Duration
	accel           float64
	json            bool
	snapshotOut     string
	snapshotAtHours int
}

// runSpecFile runs a declarative scenario spec through the assertion
// harness: checkpoints print as they are taken, then the pass/fail
// report. A violated assertion is a command failure (non-zero exit) —
// the CI gate contract.
func runSpecFile(cfg cablevod.Config, path string, o specFileRunOptions) (*cablevod.Result, error) {
	opts := cablevod.SpecRunOptions{
		Checkpoint:   o.fallback,
		Acceleration: o.accel,
		OnCheckpoint: func(cp cablevod.ScenarioCheckpoint) { printCheckpoint(cp, o.json) },
	}
	armSnapshot(&opts.SnapshotAt, &opts.OnSnapshot, &opts.SnapshotFuture, o.snapshotOut, o.snapshotAtHours)
	report, err := cablevod.RunSpecFile(path, cfg, opts)
	if err != nil {
		return nil, err
	}
	fmt.Println()
	report.Render(os.Stdout)
	fmt.Println()
	if !report.Pass() {
		f := report.FirstFailure()
		return nil, fmt.Errorf("scenario spec %s: assertion %s violated: %s", path, f.Label, f.Detail)
	}
	return report.Result, nil
}

// printCheckpoint renders one scenario checkpoint, as a JSON line or a
// phase-labelled snapshot line.
func printCheckpoint(cp cablevod.ScenarioCheckpoint, asJSON bool) {
	if asJSON {
		printJSON(struct {
			AtHours float64          `json:"at_hours"`
			Phases  string           `json:"phases"`
			Metrics cablevod.Metrics `json:"metrics"`
		}{AtHours: cp.At.Hours(), Phases: cp.Phases, Metrics: cp.Metrics})
		return
	}
	label := cp.Phases
	if label == "" {
		label = "-"
	}
	fmt.Printf("[%-10s] ", label)
	printSnapshot(cp.Metrics)
}

// printJSON writes one JSON line to stdout.
func printJSON(v any) {
	out, err := json.Marshal(v)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vodsim: marshal snapshot:", err)
		return
	}
	fmt.Println(string(out))
}

// registered reports whether name is in the strategy registry.
func registered(name string) bool {
	for _, s := range cablevod.Strategies() {
		if s == name {
			return true
		}
	}
	return false
}

// runLive drives the long-lived online engine in day-sized batches
// (SubmitBatch fans each batch across the neighborhood shards), printing
// a live metrics snapshot every snapshotDays simulated days and the
// per-neighborhood breakdown at the end of the run.
func runLive(cfg cablevod.Config, tr *cablevod.Trace, snapshotDays int, asJSON bool) (*cablevod.Result, error) {
	cfg.Subscribers = tr.Users()
	cfg.Catalog = cablevod.TraceCatalog(tr)
	cfg.Future = tr
	sys, err := cablevod.New(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Printf("engine: %d shards (one per neighborhood) on a %d-worker pool\n",
		sys.Shards(), sys.Parallelism())
	emit := func(m cablevod.Metrics) {
		if asJSON {
			printJSON(m)
		} else {
			printSnapshot(m)
		}
	}
	nextDay := snapshotDays
	start := 0
	for i, rec := range tr.Records {
		if day := int(rec.Start / (24 * time.Hour)); day >= nextDay {
			if err := sys.SubmitBatch(tr.Records[start:i]); err != nil {
				return nil, fmt.Errorf("batch starting at record %d: %w", start, err)
			}
			start = i
			emit(sys.Snapshot())
			for nextDay <= day {
				nextDay += snapshotDays
			}
		}
	}
	if err := sys.SubmitBatch(tr.Records[start:]); err != nil {
		return nil, fmt.Errorf("batch starting at record %d: %w", start, err)
	}
	final := sys.Snapshot()
	emit(final)
	if !asJSON {
		printBreakdown(final)
	}
	return sys.Close()
}

// printSnapshot renders one live metrics line.
func printSnapshot(m cablevod.Metrics) {
	fmt.Printf("[day %3.1f] sessions %d (%d active)  hit %5.1f%%  server %6.2f Gb/s avg  coax %5.0f Mb/s avg  cache %3.0f%% of %v  adm %d  evi %d\n",
		m.Now.Hours()/24, m.Counters.Sessions, m.ActiveSessions,
		100*m.HitRatio(), m.ServerRate.Gbps(), m.CoaxRate.Mbps(),
		100*float64(m.CacheUsed)/float64(max(int64(m.CacheCapacity), 1)), m.CacheCapacity,
		m.Counters.Admissions, m.Counters.Evictions)
}

// printBreakdown renders the per-neighborhood shard table of a snapshot.
func printBreakdown(m cablevod.Metrics) {
	fmt.Printf("per-neighborhood breakdown (%d shards):\n", m.Neighborhoods)
	fmt.Printf("  %4s %10s %8s %12s %10s\n", "nb", "sessions", "hit", "coax avg", "cache")
	for _, nb := range m.PerNeighborhood {
		occupancy := 0.0
		if nb.CacheCapacity > 0 {
			occupancy = 100 * float64(nb.CacheUsed) / float64(nb.CacheCapacity)
		}
		fmt.Printf("  %4d %10d %7.1f%% %9.0f Mb/s %9.0f%%\n",
			nb.ID, nb.Sessions, 100*nb.HitRatio, nb.CoaxRate.Mbps(), occupancy)
	}
}

func printResult(res *cablevod.Result, elapsed time.Duration) {
	c := res.Counters
	fmt.Printf("strategy            %v (fill %v)\n", res.Config.StrategyLabel(), res.Config.Fill)
	fmt.Printf("neighborhoods       %d x %d subscribers\n", res.Neighborhoods, res.Config.Topology.NeighborhoodSize)
	fmt.Printf("cache/neighborhood  %v\n", res.Config.TotalCachePerNeighborhood())
	fmt.Printf("trace days          %d (warmup %d)\n", res.Days, res.Config.WarmupDays)
	fmt.Println()
	fmt.Printf("server load (peak)  %.2f Gb/s  [p05 %.2f, p95 %.2f]\n",
		res.Server.Mean.Gbps(), res.Server.P05.Gbps(), res.Server.P95.Gbps())
	fmt.Printf("uncached demand     %.2f Gb/s\n", res.Demand.Mean.Gbps())
	fmt.Printf("savings             %.1f%%\n", 100*res.SavingsVsDemand)
	fmt.Printf("segment hit ratio   %.1f%%\n", 100*c.HitRatio())
	fmt.Printf("coax traffic (peak) %.0f Mb/s avg, %.0f Mb/s p95\n",
		res.Coax.Mean.Mbps(), res.Coax.P95.Mbps())
	fmt.Println()
	fmt.Printf("sessions            %d\n", c.Sessions)
	fmt.Printf("segment requests    %d\n", c.SegmentRequests)
	fmt.Printf("  hits              %d\n", c.Hits)
	fmt.Printf("  first-fetch miss  %d\n", c.MissFirstFetch)
	fmt.Printf("  not-cached miss   %d\n", c.MissNotCached)
	fmt.Printf("  unplaced miss     %d\n", c.MissUnplaced)
	fmt.Printf("  peer-busy miss    %d\n", c.MissPeerBusy)
	fmt.Printf("  broadcast fills   %d\n", c.Fills)
	fmt.Printf("elapsed             %v\n", elapsed.Round(time.Millisecond))
}
