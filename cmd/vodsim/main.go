// Command vodsim runs one cooperative-cache VoD simulation over a trace
// (from a file or freshly synthesized) and prints the paper's metrics:
// peak-hour server load with 5%/95% quantiles, savings against the
// uncached baseline, hit ratios, and coax utilization.
//
// Usage:
//
//	vodsim -synth -neighborhood 1000 -storage 10GB -strategy lfu
//	vodsim -trace trace.gob -strategy oracle -warmup 7
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cablevod"
	"cablevod/internal/core"
	"cablevod/internal/units"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vodsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("vodsim", flag.ContinueOnError)
	var (
		path     = fs.String("trace", "", "trace file (.csv or .gob)")
		synth    = fs.Bool("synth", false, "synthesize the default trace instead of loading one")
		days     = fs.Int("synth-days", 14, "days for -synth")
		users    = fs.Int("synth-users", 41_698, "users for -synth")
		programs = fs.Int("synth-programs", 8_278, "programs for -synth")
		seed     = fs.Uint64("seed", 1, "seed for -synth")

		neighborhood = fs.Int("neighborhood", 1000, "subscribers per headend")
		storage      = fs.String("storage", "10GB", "per-peer cache contribution")
		strategyName = fs.String("strategy", "lfu", "caching strategy: lru, lfu, oracle, global-lfu")
		history      = fs.Duration("history", 72*time.Hour, "LFU history window")
		lag          = fs.Duration("lag", 0, "global popularity publication lag")
		warmup       = fs.Int("warmup", 7, "days excluded from statistics")
		fillMode     = fs.String("fill", "immediate", "segment availability: immediate or on-broadcast")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var tr *cablevod.Trace
	var err error
	switch {
	case *synth:
		opts := cablevod.DefaultTraceOptions()
		opts.Days = *days
		opts.Users = *users
		opts.Programs = *programs
		opts.Seed = *seed
		tr, err = cablevod.GenerateTrace(opts)
	case *path != "":
		tr, err = cablevod.LoadTrace(*path)
	default:
		return fmt.Errorf("need -trace FILE or -synth")
	}
	if err != nil {
		return err
	}

	strategy, err := core.ParseStrategy(*strategyName)
	if err != nil {
		return err
	}
	perPeer, err := units.ParseByteSize(*storage)
	if err != nil {
		return err
	}
	var fill cablevod.FillMode
	switch *fillMode {
	case "immediate":
		fill = cablevod.FillImmediate
	case "on-broadcast":
		fill = cablevod.FillOnBroadcast
	default:
		return fmt.Errorf("unknown fill mode %q", *fillMode)
	}

	cfg := cablevod.Config{
		NeighborhoodSize: *neighborhood,
		PerPeerStorage:   perPeer,
		Strategy:         strategy,
		LFUHistory:       *history,
		GlobalLag:        *lag,
		Fill:             fill,
		WarmupDays:       *warmup,
	}
	start := time.Now()
	res, err := cablevod.Run(cfg, tr)
	if err != nil {
		return err
	}
	printResult(res, time.Since(start))
	return nil
}

func printResult(res *cablevod.Result, elapsed time.Duration) {
	c := res.Counters
	fmt.Printf("strategy            %v (fill %v)\n", res.Config.Strategy, res.Config.Fill)
	fmt.Printf("neighborhoods       %d x %d subscribers\n", res.Neighborhoods, res.Config.Topology.NeighborhoodSize)
	fmt.Printf("cache/neighborhood  %v\n", res.Config.TotalCachePerNeighborhood())
	fmt.Printf("trace days          %d (warmup %d)\n", res.Days, res.Config.WarmupDays)
	fmt.Println()
	fmt.Printf("server load (peak)  %.2f Gb/s  [p05 %.2f, p95 %.2f]\n",
		res.Server.Mean.Gbps(), res.Server.P05.Gbps(), res.Server.P95.Gbps())
	fmt.Printf("uncached demand     %.2f Gb/s\n", res.Demand.Mean.Gbps())
	fmt.Printf("savings             %.1f%%\n", 100*res.SavingsVsDemand)
	fmt.Printf("segment hit ratio   %.1f%%\n", 100*c.HitRatio())
	fmt.Printf("coax traffic (peak) %.0f Mb/s avg, %.0f Mb/s p95\n",
		res.Coax.Mean.Mbps(), res.Coax.P95.Mbps())
	fmt.Println()
	fmt.Printf("sessions            %d\n", c.Sessions)
	fmt.Printf("segment requests    %d\n", c.SegmentRequests)
	fmt.Printf("  hits              %d\n", c.Hits)
	fmt.Printf("  first-fetch miss  %d\n", c.MissFirstFetch)
	fmt.Printf("  not-cached miss   %d\n", c.MissNotCached)
	fmt.Printf("  unplaced miss     %d\n", c.MissUnplaced)
	fmt.Printf("  peer-busy miss    %d\n", c.MissPeerBusy)
	fmt.Printf("  broadcast fills   %d\n", c.Fills)
	fmt.Printf("elapsed             %v\n", elapsed.Round(time.Millisecond))
}
