package main

import (
	"fmt"
	"os"
	"time"

	"cablevod"
	"cablevod/internal/core"
	"cablevod/internal/hfc"
	"cablevod/internal/scenario"
	"cablevod/internal/universe"
)

// coreConfig maps the CLI's facade configuration onto the engine's,
// the same projection the cablevod package applies internally. The
// universe runners drive internal/core directly because the facade's
// batch entry points materialize traces, which is exactly what a
// mega-scale run must never do.
func coreConfig(cfg cablevod.Config) core.Config {
	return core.Config{
		Topology: hfc.Config{
			NeighborhoodSize:  cfg.NeighborhoodSize,
			PerPeerStorage:    cfg.PerPeerStorage,
			MaxStreamsPerPeer: cfg.MaxStreamsPerPeer,
			CoaxCapacity:      cfg.CoaxCapacity,
		},
		Strategy:        cfg.Strategy,
		StrategyName:    cfg.StrategyName,
		LFUHistory:      cfg.LFUHistory,
		OracleLookahead: cfg.OracleLookahead,
		GlobalLag:       cfg.GlobalLag,
		Fill:            cfg.Fill,
		Replicas:        cfg.Replicas,
		PrefixSegments:  cfg.PrefixSegments,
		WarmupDays:      cfg.WarmupDays,
		Parallelism:     cfg.Parallelism,
	}
}

// runScale streams a universe tier's whole workload through the engine
// in one uninterrupted pass, printing per-day progress to stderr. The
// workload is generated hour by hour and never materialized.
func runScale(tier universe.Config, cfg cablevod.Config) (*cablevod.Result, error) {
	base := tier.EngineConfig(coreConfig(cfg))
	spec := tier.Spec()
	stream, population, err := scenario.NewStream(spec, base.Topology)
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(base, core.Workload{Users: population, Lengths: stream.Lengths()})
	if err != nil {
		return nil, err
	}
	for _, ph := range spec.Phases {
		for i, f := range ph.Faults {
			if err := sys.Disrupt(f); err != nil {
				return nil, fmt.Errorf("universe %s: phase %q fault %d (%s): %w", tier.Name, ph.Name, i, f.Kind(), err)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "vodsim: universe %s — %d subscribers, %d neighborhoods (%d shards on a %d-worker pool), ~%d records over %d days\n",
		tier.Name, tier.Subscribers, tier.Neighborhoods, sys.Shards(), sys.Parallelism(), tier.Records(), tier.Days)

	start := time.Now()
	submitted, hours := 0, 0
	for !stream.Done() {
		recs, _, err := stream.NextHour()
		if err != nil {
			return nil, err
		}
		hours++
		if len(recs) > 0 {
			if err := sys.SubmitBatch(recs); err != nil {
				return nil, err
			}
			submitted += len(recs)
		}
		if hours%24 == 0 {
			elapsed := time.Since(start).Seconds()
			fmt.Fprintf(os.Stderr, "vodsim: day %d/%d — %d records (%.0f rec/s)\n",
				hours/24, tier.Days, submitted, float64(submitted)/elapsed)
		}
	}
	defer printFootprint()
	return sys.Close()
}

// runScaleLongRun drives universe.LongRun: the tier's run split into
// checkpointed legs in dir, resumable by re-running the same command.
// The final line prints the canonical state digest, the value the CI
// equivalence smoke compares across resumed and uninterrupted runs.
func runScaleLongRun(tier universe.Config, cfg cablevod.Config, dir string, legHours, maxLegs int) error {
	if dir == "" {
		dir = ".longrun-" + tier.Name
	}
	start := time.Now()
	res, err := universe.LongRun(tier, coreConfig(cfg), universe.LongRunOptions{
		Dir:     dir,
		Leg:     time.Duration(legHours) * time.Hour,
		MaxLegs: maxLegs,
		OnLeg: func(leg universe.LegInfo) {
			fmt.Fprintf(os.Stderr, "vodsim: leg %d checkpointed at t=%vh — %d records, %s\n",
				leg.Leg, leg.At.Hours(), leg.Submitted, leg.Digest)
		},
	})
	if err != nil {
		return err
	}
	printFootprint()
	if !res.Done {
		fmt.Printf("longrun paused after %d leg(s) (%d total, t=%vh, %d records)\n",
			res.LegsRun, res.LegsTotal, res.At.Hours(), res.Submitted)
		fmt.Printf("resume with the same command; state in %s\n", dir)
		fmt.Printf("longrun digest: %s\n", res.Digest)
		return nil
	}
	printResult(res.Result, time.Since(start))
	fmt.Printf("longrun legs        %d\n", res.LegsTotal)
	fmt.Printf("longrun digest      %s\n", res.Digest)
	return nil
}

// printFootprint reports process memory after a scale run, the number
// the mega tier's laptop-class claim is judged by.
func printFootprint() {
	fp := universe.MeasureFootprint()
	fmt.Fprintf(os.Stderr, "vodsim: live heap %.0f MB, peak RSS %.0f MB\n",
		float64(fp.HeapLiveBytes)/1e6, float64(fp.PeakRSSBytes)/1e6)
}
