package main

import (
	"os"
	"path/filepath"
	"testing"

	"cablevod"
)

// quietStdout silences the command's stdout for the test's duration.
func quietStdout(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

func TestRunGeneratesTrace(t *testing.T) {
	quietStdout(t)
	out := filepath.Join(t.TempDir(), "t.gob")
	err := run([]string{"-out", out, "-users", "300", "-programs", "50", "-days", "2", "-q"})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := cablevod.LoadTrace(out)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Error("empty trace generated")
	}
	s := tr.Summarize()
	if s.Programs > 50 {
		t.Errorf("programs = %d, want <= 50", s.Programs)
	}
}

func TestRunCSVOutput(t *testing.T) {
	quietStdout(t)
	out := filepath.Join(t.TempDir(), "t.csv")
	if err := run([]string{"-out", out, "-users", "200", "-programs", "40", "-days", "1", "-q"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cablevod.LoadTrace(out); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	quietStdout(t)
	if err := run([]string{"-users", "0", "-out", filepath.Join(t.TempDir(), "t.gob")}); err == nil {
		t.Error("expected error for zero users")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("expected flag error")
	}
	if err := run([]string{"-out", "/nonexistent-dir/t.gob", "-users", "100", "-programs", "10", "-days", "1"}); err == nil {
		t.Error("expected error for unwritable path")
	}
}
