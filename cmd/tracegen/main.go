// Command tracegen generates a synthetic PowerInfo-like VoD workload
// trace calibrated to the statistics the paper reports, and writes it to
// a .csv or .gob file.
//
// Usage:
//
//	tracegen -out trace.gob [-users 41698] [-programs 8278] [-days 14] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cablevod"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		out      = fs.String("out", "trace.gob", "output file (.csv or .gob)")
		users    = fs.Int("users", 41_698, "subscriber population")
		programs = fs.Int("programs", 8_278, "catalog size")
		days     = fs.Int("days", 14, "trace length in days")
		seed     = fs.Uint64("seed", 1, "generator seed")
		quiet    = fs.Bool("q", false, "suppress the summary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := cablevod.DefaultTraceOptions()
	opts.Users = *users
	opts.Programs = *programs
	opts.Days = *days
	opts.Seed = *seed

	start := time.Now()
	tr, err := cablevod.GenerateTrace(opts)
	if err != nil {
		return err
	}
	if err := cablevod.SaveTrace(tr, *out); err != nil {
		return err
	}
	if !*quiet {
		s := tr.Summarize()
		fmt.Printf("wrote %s: %d sessions, %d users, %d programs, %v span (generated in %v)\n",
			*out, s.Records, s.Users, s.Programs, s.Span, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
