package cablevod

import (
	"reflect"
	"testing"
	"time"
)

// streamConfig returns cfg with the workload fields (Subscribers,
// Catalog, Future) filled from tr, the way an online deployment that
// knows its population and catalog would configure New.
func streamConfig(cfg Config, tr *Trace) Config {
	cfg.Subscribers = tr.Users()
	cfg.Catalog = TraceCatalog(tr)
	cfg.Future = tr
	return cfg
}

// runStreaming drives tr through a long-lived System record by record.
func runStreaming(t *testing.T, cfg Config, tr *Trace) *Result {
	t.Helper()
	sys, err := New(streamConfig(cfg, tr))
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range tr.Records {
		if err := sys.Submit(rec); err != nil {
			t.Fatalf("submit record %d: %v", i, err)
		}
	}
	res, err := sys.Close()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// normalizeParallelism strips the one intentionally
// parallelism-dependent Result field so bit-identical engine output can
// be compared across worker-pool widths.
func normalizeParallelism(res *Result) *Result {
	res.Config.Parallelism = 0
	return res
}

// TestSystemMatchesRun is the streaming-vs-batch equivalence suite: a
// System fed record by record must produce a Result identical to the
// batch Run for every strategy and fill mode, across seeds, at every
// shard parallelism (1 is the serial path; 4 exercises the concurrent
// engine even on smaller machines).
func TestSystemMatchesRun(t *testing.T) {
	strategies := []Strategy{LRU, LFU, Oracle, GlobalLFU}
	fills := []FillMode{FillImmediate, FillOnBroadcast}
	for seed := uint64(1); seed <= 3; seed++ {
		opts := smallTraceOptions()
		opts.Seed = seed
		tr, err := GenerateTrace(opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, strat := range strategies {
			for _, fill := range fills {
				var want *Result
				for _, par := range []int{1, 4} {
					cfg := Config{
						NeighborhoodSize: 400,
						PerPeerStorage:   2 * GB,
						Strategy:         strat,
						Fill:             fill,
						WarmupDays:       1,
						Parallelism:      par,
					}
					batch, err := Run(cfg, tr)
					if err != nil {
						t.Fatalf("seed %d %v/%v: %v", seed, strat, fill, err)
					}
					normalizeParallelism(batch)
					if want == nil {
						want = batch
					} else if !reflect.DeepEqual(batch, want) {
						t.Errorf("seed %d %v/%v: batch result at parallelism %d differs from parallelism 1",
							seed, strat, fill, par)
					}
					stream := normalizeParallelism(runStreaming(t, cfg, tr))
					if !reflect.DeepEqual(stream, want) {
						t.Errorf("seed %d %v/%v par %d: streaming result differs from batch\nbatch:  %+v\nstream: %+v",
							seed, strat, fill, par, want, stream)
					}
				}
			}
		}
	}
}

// TestSystemSubmitBatch: the bulk-ingest path equals per-record Submit
// and validates batches atomically.
func TestSystemSubmitBatch(t *testing.T) {
	tr, err := GenerateTrace(smallTraceOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		NeighborhoodSize: 400,
		PerPeerStorage:   2 * GB,
		WarmupDays:       1,
		Parallelism:      4,
	}
	want := normalizeParallelism(runStreaming(t, cfg, tr))

	sys, err := New(streamConfig(cfg, tr))
	if err != nil {
		t.Fatal(err)
	}
	// The pool is clamped to the shard count: more workers than shards
	// would idle.
	wantPar := 4
	if sys.Shards() < wantPar {
		wantPar = sys.Shards()
	}
	if sys.Shards() == 0 || sys.Parallelism() != wantPar {
		t.Errorf("Shards() = %d, Parallelism() = %d, want shards > 0 and parallelism %d",
			sys.Shards(), sys.Parallelism(), wantPar)
	}
	if err := sys.SubmitBatch(tr.Records); err != nil {
		t.Fatal(err)
	}
	if m := sys.Snapshot(); len(m.PerNeighborhood) != sys.Shards() {
		t.Errorf("snapshot breakdown has %d entries, want %d", len(m.PerNeighborhood), sys.Shards())
	}
	got, err := sys.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalizeParallelism(got), want) {
		t.Error("SubmitBatch result differs from per-record Submit")
	}

	// Atomic validation: a bad record anywhere rejects the whole batch.
	sys2, err := New(streamConfig(cfg, tr))
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]Record(nil), tr.Records[:5]...)
	bad[3].User = 1 << 30
	if err := sys2.SubmitBatch(bad); err == nil {
		t.Error("expected error for unknown user in batch")
	}
	if m := sys2.Snapshot(); m.Submitted != 0 {
		t.Errorf("failed batch left %d records behind", m.Submitted)
	}
	if _, err := sys2.Close(); err != nil {
		t.Fatal(err)
	}
}

// fifoPolicy is a user-defined strategy: admit everything, evict in
// admission order. It exercises the public Policy surface end-to-end.
type fifoPolicy struct {
	order []ProgramID
}

func (f *fifoPolicy) Name() string                                { return "fifo" }
func (f *fifoPolicy) Advance(time.Duration)                       {}
func (f *fifoPolicy) OnRequest(ProgramID, time.Duration)          {}
func (f *fifoPolicy) CandidateValue(ProgramID, time.Duration) int { return int(^uint(0) >> 1) }
func (f *fifoPolicy) OnAdmit(p ProgramID, _ time.Duration)        { f.order = append(f.order, p) }
func (f *fifoPolicy) OnEvict(p ProgramID) {
	for i, q := range f.order {
		if q == p {
			f.order = append(f.order[:i], f.order[i+1:]...)
			return
		}
	}
}
func (f *fifoPolicy) EvictionOrder(yield func(p ProgramID, value int) bool) {
	for _, p := range f.order {
		if !yield(p, 0) {
			return
		}
	}
}

func TestRegisterStrategyCustomPolicy(t *testing.T) {
	if err := RegisterStrategy("fifo-test", func(Config) Policy { return &fifoPolicy{} }); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, name := range Strategies() {
		if name == "fifo-test" {
			found = true
		}
	}
	if !found {
		t.Fatalf("fifo-test not listed in Strategies(): %v", Strategies())
	}

	tr, err := GenerateTrace(smallTraceOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		NeighborhoodSize: 400,
		PerPeerStorage:   1 * GB,
		StrategyName:     "fifo-test",
		WarmupDays:       1,
	}

	// The custom policy must run through both the batch wrapper and the
	// streaming engine, identically.
	batch, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	stream := runStreaming(t, cfg, tr)
	if !reflect.DeepEqual(batch, stream) {
		t.Error("custom strategy: streaming result differs from batch")
	}
	if batch.Counters.Admissions == 0 {
		t.Error("custom strategy admitted nothing")
	}
	if batch.Counters.Evictions == 0 {
		t.Error("custom strategy evicted nothing (cache should overflow at 1 GB/peer)")
	}
	if batch.Counters.Hits == 0 {
		t.Error("custom strategy served no hits")
	}
	if got := batch.Config.StrategyLabel(); got != "fifo-test" {
		t.Errorf("StrategyLabel() = %q, want fifo-test", got)
	}
}

func TestRegisterStrategyErrors(t *testing.T) {
	if err := RegisterStrategy("", func(Config) Policy { return &fifoPolicy{} }); err == nil {
		t.Error("expected error for empty name")
	}
	if err := RegisterStrategy("nil-factory", nil); err == nil {
		t.Error("expected error for nil factory")
	}
	if err := RegisterStrategy("lru", func(Config) Policy { return &fifoPolicy{} }); err == nil {
		t.Error("expected error re-registering built-in lru")
	}
	// A factory returning nil fails at System construction, not at
	// registration.
	if err := RegisterStrategy("nil-policy-test", func(Config) Policy { return nil }); err != nil {
		t.Fatal(err)
	}
	tr, err := GenerateTrace(smallTraceOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := streamConfig(Config{NeighborhoodSize: 400, StrategyName: "nil-policy-test"}, tr)
	if _, err := New(cfg); err == nil {
		t.Error("expected error for factory returning nil policy")
	}
}

func TestSystemSnapshot(t *testing.T) {
	tr, err := GenerateTrace(smallTraceOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := streamConfig(Config{NeighborhoodSize: 400, PerPeerStorage: 2 * GB}, tr)
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if m := sys.Snapshot(); m.Submitted != 0 || m.Counters.Sessions != 0 {
		t.Errorf("fresh system snapshot not empty: %+v", m)
	}

	half := tr.Len() / 2
	for _, rec := range tr.Records[:half] {
		if err := sys.Submit(rec); err != nil {
			t.Fatal(err)
		}
	}
	mid := sys.Snapshot()
	if mid.Submitted != half {
		t.Errorf("Submitted = %d, want %d", mid.Submitted, half)
	}
	if mid.Counters.Sessions != uint64(half) {
		t.Errorf("Sessions = %d, want %d", mid.Counters.Sessions, half)
	}
	if mid.Now != tr.Records[half-1].Start {
		t.Errorf("Now = %v, want last submitted start %v", mid.Now, tr.Records[half-1].Start)
	}
	if mid.Counters.SegmentRequests == 0 || mid.DemandBits == 0 {
		t.Error("mid-flight snapshot shows no traffic")
	}
	if mid.CacheCapacity == 0 || mid.CacheUsed == 0 || mid.CachedPrograms == 0 {
		t.Errorf("mid-flight snapshot shows no cache state: %+v", mid)
	}
	if mid.DemandRate <= 0 || mid.ServerRate <= 0 || mid.CoaxRate <= 0 {
		t.Errorf("mid-flight snapshot rates not positive: %+v", mid)
	}
	if s := mid.Savings(); s <= 0 || s > 1 {
		t.Errorf("Savings() = %v, want in (0, 1]", s)
	}

	for _, rec := range tr.Records[half:] {
		if err := sys.Submit(rec); err != nil {
			t.Fatal(err)
		}
	}
	end := sys.Snapshot()
	if end.Submitted != tr.Len() {
		t.Errorf("Submitted = %d, want %d", end.Submitted, tr.Len())
	}
	if end.Counters.SegmentRequests < mid.Counters.SegmentRequests {
		t.Error("segment requests went backwards")
	}

	res, err := sys.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Sessions != uint64(tr.Len()) {
		t.Errorf("result sessions = %d, want %d", res.Counters.Sessions, tr.Len())
	}
	// After Close every session has ended.
	if m := sys.Snapshot(); m.ActiveSessions != 0 {
		t.Errorf("ActiveSessions after Close = %d, want 0", m.ActiveSessions)
	}
}

func TestSystemSubmitErrors(t *testing.T) {
	tr, err := GenerateTrace(smallTraceOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := streamConfig(Config{NeighborhoodSize: 400}, tr)
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Submit(tr.Records[1]); err != nil {
		t.Fatal(err)
	}
	// Out of timestamp order.
	early := tr.Records[1]
	early.Start -= time.Hour
	if err := sys.Submit(early); err == nil {
		t.Error("expected error for out-of-order record")
	}
	// Unknown user.
	stranger := tr.Records[1]
	stranger.User = 1 << 30
	if err := sys.Submit(stranger); err == nil {
		t.Error("expected error for user outside the population")
	}
	// Invalid record.
	bad := tr.Records[1]
	bad.Duration = 0
	if err := sys.Submit(bad); err == nil {
		t.Error("expected error for invalid record")
	}
	if _, err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Submit(tr.Records[2]); err == nil {
		t.Error("expected error submitting after Close")
	}
	if _, err := sys.Close(); err == nil {
		t.Error("expected error closing twice")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{NeighborhoodSize: 100}); err == nil {
		t.Error("expected error without Subscribers")
	}
	// Oracle needs future knowledge.
	cfg := Config{
		NeighborhoodSize: 100,
		Strategy:         Oracle,
		Subscribers:      []UserID{1, 2, 3},
	}
	if _, err := New(cfg); err == nil {
		t.Error("expected error for oracle without Config.Future")
	}
	// Unknown strategy name.
	if _, err := New(Config{
		NeighborhoodSize: 100,
		Subscribers:      []UserID{1, 2, 3},
		StrategyName:     "no-such-strategy",
	}); err == nil {
		t.Error("expected error for unknown strategy name")
	}
}

// TestSystemUncataloguedProgram: a program missing from the catalog is
// never cached — every request streams from the central server.
func TestSystemUncataloguedProgram(t *testing.T) {
	sys, err := New(Config{
		NeighborhoodSize: 2,
		PerPeerStorage:   1 * GB,
		Subscribers:      []UserID{1, 2},
		Catalog:          map[ProgramID]time.Duration{},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		err := sys.Submit(Record{
			User: 1, Program: 7,
			Start:    time.Duration(i) * time.Hour,
			Duration: 5 * time.Minute,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := sys.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Admissions != 0 {
		t.Errorf("admissions = %d, want 0 for uncatalogued program", res.Counters.Admissions)
	}
	if res.Counters.Hits != 0 {
		t.Errorf("hits = %d, want 0", res.Counters.Hits)
	}
	if res.Counters.SegmentRequests == 0 {
		t.Error("no segment requests recorded")
	}
}
