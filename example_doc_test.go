package cablevod_test

import (
	"fmt"
	"log"

	"cablevod"
)

// Example mirrors the package documentation's quick start verbatim, so
// the doc snippet is compile-checked with the test suite. It has no
// Output comment and is therefore never executed during tests (a real
// run takes seconds; see examples/quickstart for a runnable program).
func Example() {
	opts := cablevod.DefaultTraceOptions() // paper-calibrated generator
	opts.Users, opts.Programs, opts.Days = 5_000, 1_000, 7
	tr, err := cablevod.GenerateTrace(opts)
	if err != nil {
		log.Fatal(err)
	}
	res, err := cablevod.Run(cablevod.Config{
		NeighborhoodSize: 500,
		PerPeerStorage:   cablevod.GB * 10,
		Strategy:         cablevod.LFU,
	}, tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server load %v, savings %.0f%%\n",
		res.Server.Mean, 100*res.SavingsVsDemand)
}
