// Scaling rollout: model a subscriber-growth plan with the paper's
// scaling transforms (Section V-A). The operator doubles and triples the
// subscriber base while also growing the catalog, and checks whether the
// existing origin servers survive — the Figure 15 / Table 16(a) question.
package main

import (
	"fmt"
	"log"

	"cablevod"
	"cablevod/internal/randdist"
	"cablevod/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scaling_rollout: ")

	opts := cablevod.DefaultTraceOptions()
	opts.Users = 6_000
	opts.Programs = 1_200
	opts.Days = 7
	opts.Seed = 11

	base, err := cablevod.GenerateTrace(opts)
	if err != nil {
		log.Fatal(err)
	}

	// Origin capacity provisioned for the year-one service.
	year1, err := run(base)
	if err != nil {
		log.Fatal(err)
	}
	originBudget := year1.Demand.Mean // uncached year-one demand
	fmt.Printf("year-one: demand %.2f Gb/s, cached server load %.2f Gb/s (savings %.0f%%)\n",
		year1.Demand.Mean.Gbps(), year1.Server.Mean.Gbps(), 100*year1.SavingsVsDemand)
	fmt.Printf("origin budget: %.2f Gb/s (the no-cache year-one requirement)\n\n", originBudget.Gbps())

	fmt.Printf("%-22s %-12s %-14s %s\n", "growth scenario", "server Gb/s", "vs budget", "savings")
	for _, sc := range []struct {
		name       string
		popX, catX int
	}{
		{"2x subscribers", 2, 1},
		{"3x subscribers", 3, 1},
		{"2x subs + 2x catalog", 2, 2},
		{"3x subs + 3x catalog", 3, 3},
	} {
		tr := base
		if sc.catX > 1 {
			tr, err = trace.ScaleCatalog(tr, sc.catX, randdist.NewRNG(opts.Seed, 100+uint64(sc.catX)))
			if err != nil {
				log.Fatal(err)
			}
		}
		if sc.popX > 1 {
			tr, err = trace.ScaleUsers(tr, sc.popX, randdist.NewRNG(opts.Seed, 200+uint64(sc.popX)))
			if err != nil {
				log.Fatal(err)
			}
		}
		res, err := run(tr)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "within budget"
		if res.Server.Mean > originBudget {
			verdict = "OVER budget"
		}
		fmt.Printf("%-22s %-12.2f %-14s %.0f%%\n",
			sc.name, res.Server.Mean.Gbps(), verdict, 100*res.SavingsVsDemand)
	}
	fmt.Println("\npaper's finding: the cache absorbs multiplicative growth; only combined")
	fmt.Println("population x catalog increases push the server past the uncached baseline.")
}

func run(tr *cablevod.Trace) (*cablevod.Result, error) {
	return cablevod.Run(cablevod.Config{
		NeighborhoodSize: 600,
		PerPeerStorage:   10 * cablevod.GB,
		Strategy:         cablevod.LFU,
		WarmupDays:       2,
	}, tr)
}
