// Custom policy: plug a user-defined caching strategy into the engine
// with RegisterIndependentStrategy and drive it through the long-lived
// online System — no internal packages touched.
//
// The strategy here is "segmented LRU" (SLRU): a probationary queue for
// programs seen once and a protected queue for programs re-requested
// while cached. One-hit wonders — the bulk of a VoD catalog — wash
// through probation without displacing proven repeaters, which is
// exactly the weakness of plain LRU under the paper's workload.
package main

import (
	"fmt"
	"log"
	"time"

	"cablevod"
)

// slru is a segmented-LRU cablevod.Policy. Values rank the protected
// segment above probation; within a segment, recency decides.
type slru struct {
	// rank orders every cached program by last touch: higher is more
	// recent. Protected programs get a large value bonus.
	rank      map[cablevod.ProgramID]int
	protected map[cablevod.ProgramID]bool
	clock     int
}

const protectedBonus = 1 << 30

func newSLRU() *slru {
	return &slru{
		rank:      map[cablevod.ProgramID]int{},
		protected: map[cablevod.ProgramID]bool{},
	}
}

func (s *slru) Name() string          { return "slru" }
func (s *slru) Advance(time.Duration) {}
func (s *slru) OnEvict(p cablevod.ProgramID) {
	delete(s.rank, p)
	delete(s.protected, p)
}

func (s *slru) OnRequest(p cablevod.ProgramID, _ time.Duration) {
	if _, cached := s.rank[p]; cached {
		// Second touch while cached: promote to the protected segment.
		s.protected[p] = true
		s.clock++
		s.rank[p] = s.clock
	}
}

func (s *slru) OnAdmit(p cablevod.ProgramID, _ time.Duration) {
	s.clock++
	s.rank[p] = s.clock // admitted on probation
}

// CandidateValue: a fresh request outranks probationary residents but
// never displaces the protected segment.
func (s *slru) CandidateValue(cablevod.ProgramID, time.Duration) int {
	return protectedBonus - 1
}

func (s *slru) value(p cablevod.ProgramID) int {
	v := s.rank[p]
	if s.protected[p] {
		v += protectedBonus
	}
	return v
}

func (s *slru) EvictionOrder(yield func(p cablevod.ProgramID, value int) bool) {
	// Small cached sets per neighborhood: a sort per admission attempt
	// keeps the example simple.
	order := make([]cablevod.ProgramID, 0, len(s.rank))
	for p := range s.rank {
		order = append(order, p)
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && s.value(order[j]) < s.value(order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, p := range order {
		if !yield(p, s.value(p)) {
			return
		}
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("custom_policy: ")

	// Each call returns a fresh SLRU sharing nothing with its siblings,
	// so the independent registration lets the engine run neighborhood
	// shards concurrently.
	if err := cablevod.RegisterIndependentStrategy("slru", func(cablevod.Config) cablevod.Policy {
		return newSLRU()
	}); err != nil {
		log.Fatal(err)
	}

	opts := cablevod.DefaultTraceOptions()
	opts.Users = 4_000
	opts.Programs = 800
	opts.Days = 7
	tr, err := cablevod.GenerateTrace(opts)
	if err != nil {
		log.Fatal(err)
	}

	// Drive the online engine: the operator knows its subscriber list
	// and catalog up front, sessions arrive one by one.
	cfg := cablevod.Config{
		NeighborhoodSize: 500,
		PerPeerStorage:   1 * cablevod.GB,
		StrategyName:     "slru",
		WarmupDays:       2,
		Subscribers:      tr.Users(),
		Catalog:          cablevod.TraceCatalog(tr),
	}
	sys, err := cablevod.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	day := time.Duration(0)
	for i, rec := range tr.Records {
		for rec.Start >= day+24*time.Hour {
			day += 24 * time.Hour
			m := sys.Snapshot()
			fmt.Printf("day %d: hit ratio %5.1f%%, cache %4.1f%% full, %d admissions, %d evictions\n",
				int(day/(24*time.Hour)), 100*m.HitRatio(),
				100*float64(m.CacheUsed)/float64(m.CacheCapacity),
				m.Counters.Admissions, m.Counters.Evictions)
		}
		if err := sys.Submit(rec); err != nil {
			log.Fatalf("record %d: %v", i, err)
		}
	}
	res, err := sys.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nslru final: server %.3f Gb/s peak, savings %.1f%%, hit ratio %.1f%%\n",
		res.Server.Mean.Gbps(), 100*res.SavingsVsDemand, 100*res.Counters.HitRatio())

	// Baseline: plain LRU over the same workload, batch style.
	lruCfg := cfg
	lruCfg.StrategyName = ""
	lruCfg.Strategy = cablevod.LRU
	lru, err := cablevod.Run(lruCfg, tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lru  final: server %.3f Gb/s peak, savings %.1f%%, hit ratio %.1f%%\n",
		lru.Server.Mean.Gbps(), 100*lru.SavingsVsDemand, 100*lru.Counters.HitRatio())
}
