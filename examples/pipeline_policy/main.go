// Pipeline policy: compose a caching strategy from built-in stages with
// the Policy API v2 — no Policy interface to implement, no internal
// packages touched. Compare examples/custom_policy, which builds the
// same kind of strategy the v1 way (a full seven-method Policy).
//
// The composition here is "lfu-2touch": windowed-frequency scoring
// (the paper's LFU) behind a bypass-on-first-touch admission filter, so
// one-hit wonders — the bulk of a VoD catalog — never displace proven
// residents. The registration is the ten lines in main.
package main

import (
	"fmt"
	"log"
	"time"

	"cablevod"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pipeline_policy: ")

	// The whole strategy: score by windowed frequency, admit only on a
	// second touch, break ties by recency. Both stages are fresh per
	// neighborhood, so the engine may run shards concurrently.
	err := cablevod.RegisterPipeline(cablevod.PolicySpec{
		Name:        "lfu-2touch",
		Description: "windowed LFU behind a bypass-on-first-touch admission filter",
		Scorer: cablevod.ScorerStage{
			New: func(cfg cablevod.Config) cablevod.Scorer {
				s, _ := cablevod.NewFrequencyScorer(cfg.LFUHistory)
				return s
			},
			Traits: cablevod.StageTraits{ShardIndependent: true},
		},
		Admission: cablevod.AdmissionStage{
			New:    func(cablevod.Config) cablevod.Admission { return cablevod.NewSecondTouchAdmission() },
			Traits: cablevod.StageTraits{ShardIndependent: true},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	opts := cablevod.DefaultTraceOptions()
	opts.Users = 4_000
	opts.Programs = 800
	opts.Days = 7
	tr, err := cablevod.GenerateTrace(opts)
	if err != nil {
		log.Fatal(err)
	}

	cfg := cablevod.Config{
		NeighborhoodSize: 500,
		PerPeerStorage:   1 * cablevod.GB,
		LFUHistory:       72 * time.Hour,
		WarmupDays:       2,
	}

	// Head to head against the fused incumbents over the same trace.
	for _, name := range []string{"lfu-2touch", "lfu", "lru"} {
		run := cfg
		run.StrategyName = name
		res, err := cablevod.Run(run, tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s server %6.3f Gb/s peak, savings %5.1f%%, hit ratio %5.1f%%, admissions %d\n",
			name, res.Server.Mean.Gbps(), 100*res.SavingsVsDemand,
			100*res.Counters.HitRatio(), res.Counters.Admissions)
	}
}
