// Quickstart: generate a small synthetic VoD workload, run the
// cooperative-cache simulation with the paper's defaults, and print the
// headline numbers. Runs in a few seconds.
package main

import (
	"fmt"
	"log"

	"cablevod"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// A small city: 5,000 subscribers, 1,000-program catalog, one week.
	opts := cablevod.DefaultTraceOptions()
	opts.Users = 5_000
	opts.Programs = 1_000
	opts.Days = 7
	opts.Seed = 42

	tr, err := cablevod.GenerateTrace(opts)
	if err != nil {
		log.Fatal(err)
	}
	s := tr.Summarize()
	fmt.Printf("workload: %d sessions from %d subscribers over %d days\n",
		s.Records, s.Users, opts.Days)

	// 500-subscriber coaxial neighborhoods, each set-top box
	// contributing 10 GB to the cooperative cache, LFU strategy.
	res, err := cablevod.Run(cablevod.Config{
		NeighborhoodSize: 500,
		PerPeerStorage:   10 * cablevod.GB,
		Strategy:         cablevod.LFU,
		WarmupDays:       2,
	}, tr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("neighborhoods:     %d (cache %v each)\n",
		res.Neighborhoods, res.Config.TotalCachePerNeighborhood())
	fmt.Printf("uncached demand:   %.2f Gb/s at peak\n", res.Demand.Mean.Gbps())
	fmt.Printf("with P2P cache:    %.2f Gb/s at peak\n", res.Server.Mean.Gbps())
	fmt.Printf("server savings:    %.0f%%\n", 100*res.SavingsVsDemand)
	fmt.Printf("segment hit ratio: %.0f%%\n", 100*res.Counters.HitRatio())
	fmt.Printf("coax load:         %.0f Mb/s average during peak hours\n",
		res.Coax.Mean.Mbps())
}
