// Strategy comparison: run LRU, LFU (several history windows), the
// global-popularity variant and the impossible Oracle over the same
// two-week workload, reproducing the Section VI-A comparison on a
// laptop-sized population.
package main

import (
	"fmt"
	"log"
	"time"

	"cablevod"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("strategy_comparison: ")

	opts := cablevod.DefaultTraceOptions()
	opts.Users = 8_000
	opts.Programs = 1_600
	opts.Days = 14
	opts.Seed = 3

	tr, err := cablevod.GenerateTrace(opts)
	if err != nil {
		log.Fatal(err)
	}

	base := cablevod.Config{
		NeighborhoodSize: 500,
		PerPeerStorage:   2 * cablevod.GB, // a small cache separates the strategies
		WarmupDays:       7,
	}

	type variant struct {
		name string
		mod  func(*cablevod.Config)
	}
	variants := []variant{
		{"LRU", func(c *cablevod.Config) { c.Strategy = cablevod.LRU }},
		{"LFU 24h", func(c *cablevod.Config) { c.Strategy = cablevod.LFU; c.LFUHistory = 24 * time.Hour }},
		{"LFU 3d", func(c *cablevod.Config) { c.Strategy = cablevod.LFU; c.LFUHistory = 72 * time.Hour }},
		{"LFU 7d", func(c *cablevod.Config) { c.Strategy = cablevod.LFU; c.LFUHistory = 7 * 24 * time.Hour }},
		{"Global LFU", func(c *cablevod.Config) { c.Strategy = cablevod.GlobalLFU }},
		{"Global 2h lag", func(c *cablevod.Config) { c.Strategy = cablevod.GlobalLFU; c.GlobalLag = 2 * time.Hour }},
		{"Oracle", func(c *cablevod.Config) { c.Strategy = cablevod.Oracle }},
	}

	fmt.Printf("%-14s %-12s %-9s %s\n", "strategy", "server Gb/s", "savings", "hit ratio")
	for _, v := range variants {
		cfg := base
		v.mod(&cfg)
		res, err := cablevod.Run(cfg, tr)
		if err != nil {
			log.Fatalf("%s: %v", v.name, err)
		}
		fmt.Printf("%-14s %-12.3f %-9s %.1f%%\n",
			v.name, res.Server.Mean.Gbps(),
			fmt.Sprintf("%.1f%%", 100*res.SavingsVsDemand),
			100*res.Counters.HitRatio())
	}
	fmt.Println("\nexpected ordering: Oracle best; LFU beats LRU; global data helps slightly.")
}
