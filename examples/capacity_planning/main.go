// Capacity planning: a cable operator wants the central VoD servers to
// stay under a target peak rate. This example sweeps the per-peer storage
// contribution and reports the smallest set-top disk slice that meets the
// target — the core dimensioning question behind Figures 8 and 9.
package main

import (
	"fmt"
	"log"

	"cablevod"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("capacity_planning: ")

	const (
		neighborhoodSize = 500
		targetGbps       = 0.40 // what the origin servers can sustain
	)

	opts := cablevod.DefaultTraceOptions()
	opts.Users = 8_000
	opts.Programs = 1_600
	opts.Days = 7
	opts.Seed = 7

	tr, err := cablevod.GenerateTrace(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("population %d, catalog %d programs, target server load %.2f Gb/s\n\n",
		opts.Users, opts.Programs, targetGbps)
	fmt.Printf("%-10s %-12s %-12s %-9s %s\n",
		"per-peer", "cache/nbhd", "server Gb/s", "savings", "meets target")

	var chosen cablevod.ByteSize
	for _, perPeer := range []cablevod.ByteSize{
		1 * cablevod.GB, 2 * cablevod.GB, 5 * cablevod.GB,
		10 * cablevod.GB, 20 * cablevod.GB,
	} {
		res, err := cablevod.Run(cablevod.Config{
			NeighborhoodSize: neighborhoodSize,
			PerPeerStorage:   perPeer,
			Strategy:         cablevod.LFU,
			WarmupDays:       2,
		}, tr)
		if err != nil {
			log.Fatal(err)
		}
		meets := res.Server.Mean.Gbps() <= targetGbps
		mark := ""
		if meets {
			mark = "yes"
			if chosen == 0 {
				chosen = perPeer
			}
		}
		fmt.Printf("%-10v %-12v %-12.2f %-9s %s\n",
			perPeer, res.Config.TotalCachePerNeighborhood(),
			res.Server.Mean.Gbps(),
			fmt.Sprintf("%.0f%%", 100*res.SavingsVsDemand), mark)
	}

	fmt.Println()
	if chosen > 0 {
		fmt.Printf("recommendation: provision %v per set-top box\n", chosen)
	} else {
		fmt.Println("recommendation: target unreachable with caching alone; add origin capacity")
	}
}
