package cablevod

import (
	"path/filepath"
	"testing"
	"time"
)

func smallTraceOptions() TraceOptions {
	opts := DefaultTraceOptions()
	opts.Users = 800
	opts.Programs = 150
	opts.Days = 3
	opts.BacklogDays = 20
	return opts
}

func TestPublicEndToEnd(t *testing.T) {
	tr, err := GenerateTrace(smallTraceOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		NeighborhoodSize: 400,
		PerPeerStorage:   2 * GB,
		Strategy:         LFU,
		WarmupDays:       1,
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Sessions == 0 {
		t.Error("no sessions simulated")
	}
	if res.SavingsVsDemand <= 0 {
		t.Errorf("no savings: %v", res.SavingsVsDemand)
	}
	if res.Server.Mean > res.Demand.Mean {
		t.Error("server load above demand")
	}
}

func TestPublicStrategies(t *testing.T) {
	tr, err := GenerateTrace(smallTraceOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Strategy{LRU, LFU, Oracle, GlobalLFU} {
		res, err := Run(Config{
			NeighborhoodSize: 400,
			PerPeerStorage:   GB,
			Strategy:         s,
			GlobalLag:        30 * time.Minute,
		}, tr)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.Counters.SegmentRequests == 0 {
			t.Errorf("%v: no segments", s)
		}
	}
}

func TestPublicTraceRoundTrip(t *testing.T) {
	tr, err := GenerateTrace(smallTraceOptions())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.gob")
	if err := SaveTrace(tr, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Errorf("round trip: %d vs %d records", got.Len(), tr.Len())
	}
}

func TestPublicErrors(t *testing.T) {
	if _, err := Run(Config{NeighborhoodSize: 10}, nil); err == nil {
		t.Error("expected error for nil trace")
	}
	if err := SaveTrace(nil, "x.gob"); err == nil {
		t.Error("expected error for nil trace")
	}
	if _, err := RunExperiment("bogus", FullScale()); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

func TestListExperimentsCoversEveryArtifact(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range ListExperiments() {
		ids[e.ID] = true
	}
	for _, want := range []string{
		"fig2", "fig3", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15", "tab16a", "fig16b", "fig16c",
	} {
		if !ids[want] {
			t.Errorf("experiment %q not registered", want)
		}
	}
}

func TestRunExperimentTinyScale(t *testing.T) {
	rep, err := RunExperiment("fig7", Scale{Users: 800, Programs: 150, Days: 3, WarmupDays: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 24 {
		t.Errorf("fig7 rows = %d, want 24", len(rep.Cells))
	}
}
