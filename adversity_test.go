package cablevod

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// adversityConfig is the engine shape the public adversity tests run
// on: small plant, no warmup, so disruptions bite quickly.
func adversityConfig(parallelism int) Config {
	return Config{
		NeighborhoodSize: 400,
		PerPeerStorage:   2 * GB,
		Strategy:         LFU,
		WarmupDays:       0,
		Parallelism:      parallelism,
	}
}

// TestPublicSnapshotRoundTrip drives the whole public surface of the
// snapshot feature: export mid-run, save to disk, load, restore, and
// finish — the resumed run must be bit-identical to one that was never
// interrupted, including under an armed disruption schedule.
func TestPublicSnapshotRoundTrip(t *testing.T) {
	tr, err := GenerateTrace(smallTraceOptions())
	if err != nil {
		t.Fatal(err)
	}
	fault := NodeFailure{
		At:        36 * time.Hour,
		Fraction:  0.5,
		RampHours: 2,
		Seed:      11,
	}
	cut := len(tr.Records) / 2

	build := func() *System {
		sys, err := New(streamConfig(adversityConfig(2), tr))
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Disrupt(fault); err != nil {
			t.Fatal(err)
		}
		return sys
	}

	// The uninterrupted reference run.
	ref := build()
	if err := ref.SubmitBatch(tr.Records); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Close()
	if err != nil {
		t.Fatal(err)
	}

	// The interrupted run: half the records, then export → save → load
	// → restore → the other half.
	sys := build()
	if err := sys.SubmitBatch(tr.Records[:cut]); err != nil {
		t.Fatal(err)
	}
	st, err := sys.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "warm.snap")
	if err := SaveState(path, st); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadState(path)
	if err != nil {
		t.Fatal(err)
	}
	tail, err := FutureTail(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != len(tr.Records)-cut {
		t.Fatalf("future tail holds %d records, want %d", len(tail), len(tr.Records)-cut)
	}
	restored, err := Restore(loaded, RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.SubmitBatch(tail); err != nil {
		t.Fatal(err)
	}
	got, err := restored.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalizeParallelism(got), normalizeParallelism(want)) {
		t.Errorf("restored run diverges from the uninterrupted run:\n got: %+v\nwant: %+v", got, want)
	}
}

// TestPublicFork checks System.Fork hands out fully independent warm
// engines: both forks driven through the same tail agree with each
// other and with the parent continuing alone.
func TestPublicFork(t *testing.T) {
	tr, err := GenerateTrace(smallTraceOptions())
	if err != nil {
		t.Fatal(err)
	}
	cut := len(tr.Records) / 2
	sys, err := New(streamConfig(adversityConfig(2), tr))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SubmitBatch(tr.Records[:cut]); err != nil {
		t.Fatal(err)
	}
	forks, err := sys.Fork(2)
	if err != nil {
		t.Fatal(err)
	}

	finish := func(s *System) *Result {
		t.Helper()
		if err := s.SubmitBatch(tr.Records[cut:]); err != nil {
			t.Fatal(err)
		}
		res, err := s.Close()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	parent := finish(sys)
	for i, f := range forks {
		if res := finish(f); !reflect.DeepEqual(res, parent) {
			t.Errorf("fork %d diverges from the parent run:\n got: %+v\nwant: %+v", i, res, parent)
		}
	}
}

// TestPublicRunForks races three strategies from one warm snapshot and
// sanity-checks the comparative report.
func TestPublicRunForks(t *testing.T) {
	tr, err := GenerateTrace(smallTraceOptions())
	if err != nil {
		t.Fatal(err)
	}
	cut := len(tr.Records) / 2
	sys, err := New(streamConfig(adversityConfig(2), tr))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SubmitBatch(tr.Records[:cut]); err != nil {
		t.Fatal(err)
	}
	if err := sys.Disrupt(ColdRestart{At: tr.Records[cut].Start}); err != nil {
		t.Fatal(err)
	}
	st, err := sys.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	tail, err := FutureTail(st)
	if err != nil {
		t.Fatal(err)
	}

	report, err := RunForks(st, []string{"lfu", "lru", "gdsf"}, tail, ForkOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Arms) != 3 {
		t.Fatalf("report has %d arms, want 3", len(report.Arms))
	}
	for _, arm := range report.Arms {
		if arm.HitRatio <= 0 || arm.HitRatio > 1 {
			t.Errorf("arm %s post-fork hit ratio %v out of range", arm.Strategy, arm.HitRatio)
		}
		if arm.Result == nil {
			t.Errorf("arm %s carries no final result", arm.Strategy)
		}
	}
	table := report.Table()
	for _, want := range []string{"lfu", "lru", "gdsf", "STRATEGY", "best post-fork savings"} {
		if !strings.Contains(table, want) {
			t.Errorf("report table missing %q:\n%s", want, table)
		}
	}
}
