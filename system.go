package cablevod

import (
	"fmt"
	"time"

	"cablevod/internal/cache"
	"cablevod/internal/core"
)

// System is the long-lived online serving engine: the public face of the
// index servers, cooperative caches, and discrete-event session state for
// one deployment. Unlike Run, which replays a complete trace in one call,
// a System ingests session records incrementally as viewers tune in,
// reports live metrics mid-flight, and finalizes statistics on Close:
//
//	sys, err := cablevod.New(cfg) // cfg.Subscribers + cfg.Catalog set
//	for rec := range requests {   // in timestamp order
//		if err := sys.Submit(rec); err != nil { ... }
//		fmt.Println(sys.Snapshot().HitRatio())
//	}
//	res, err := sys.Close()
//
// Internally the engine is sharded: each coax neighborhood owns its
// caches, index server, event queue, and meters, and shards execute
// concurrently on a bounded worker pool (Config.Parallelism) when
// records arrive through SubmitBatch. Results are bit-identical at
// every parallelism level.
//
// Calls must not race: a System is driven from one goroutine and
// manages its internal worker pool itself.
type System struct {
	sys *core.System
}

// Metrics is a live aggregate view of a running System: the virtual
// clock, running counters, transfer totals, average server/coax rates,
// pooled cache occupancy, and the per-neighborhood breakdown.
type Metrics = core.Metrics

// NeighborhoodMetrics is one neighborhood's slice of a Snapshot: its
// session count, hit ratio, coax load, and cache occupancy.
type NeighborhoodMetrics = core.NeighborhoodMetrics

// New builds the topology, index servers, and caches for a long-lived
// online system. Config.Subscribers (the full user population) is
// required; Config.Catalog supplies program lengths (programs absent
// from it are never cached); Config.Future is required only by the
// Oracle strategy. Feed sessions with Submit and finalize with Close.
func New(cfg Config) (*System, error) {
	if len(cfg.Subscribers) == 0 {
		return nil, fmt.Errorf("cablevod: Config.Subscribers must list the user population")
	}
	w := core.Workload{Users: cfg.Subscribers, Lengths: cfg.Catalog}
	if cfg.Future != nil {
		if !cfg.Future.Sorted() {
			return nil, fmt.Errorf("cablevod: Config.Future must be sorted")
		}
		w.Future = cfg.Future.Records
	}
	sys, err := core.NewSystem(cfg.internal(), w)
	if err != nil {
		return nil, err
	}
	return &System{sys: sys}, nil
}

// Submit ingests one session record, advancing virtual time to the
// record's start and serving its segments as simulation events unfold.
// Records must arrive in non-decreasing Start order; the user must be in
// the subscriber population. For bulk ingest, SubmitBatch fans the
// records out across the engine's shards.
func (s *System) Submit(rec Record) error {
	return s.sys.Submit(rec)
}

// SubmitBatch ingests a sequence of session records under the same
// ordering and membership rules as Submit, partitioned across the
// per-neighborhood shards and processed concurrently on the worker pool
// — the high-throughput ingest path. The batch is validated as a whole
// before any record is processed: on error the engine state is
// unchanged. Results are bit-identical to submitting each record
// individually.
func (s *System) SubmitBatch(recs []Record) error {
	return s.sys.SubmitBatch(recs)
}

// Snapshot returns live aggregates — hit ratio, server and coax load,
// admissions and evictions, cache occupancy, and the per-neighborhood
// breakdown — valid as of the last submitted record. It never advances
// the clock past that point.
func (s *System) Snapshot() Metrics {
	return s.sys.Snapshot()
}

// Shards returns the engine's shard count (one per coax neighborhood).
func (s *System) Shards() int { return s.sys.Shards() }

// Parallelism returns the resolved worker-pool width shards execute on.
func (s *System) Parallelism() int { return s.sys.Parallelism() }

// Now returns the engine's virtual clock.
func (s *System) Now() time.Duration { return s.sys.Now() }

// Close drains every in-flight session and finalizes the run statistics.
// The system cannot be used afterwards.
func (s *System) Close() (*Result, error) {
	return s.sys.Close()
}

// Policy is a pluggable cache replacement strategy at program
// granularity, mirroring the engine's internal policy contract. The
// per-neighborhood cache container drives it; implementations maintain
// whatever bookkeeping their strategy needs (recency lists, frequency
// windows, future indexes). Register implementations with
// RegisterStrategy and select them via Config.StrategyName.
//
// Time advances monotonically across calls. One Policy instance governs
// one neighborhood's pooled cache.
type Policy interface {
	// Name identifies the strategy ("lru", "lfu", ...).
	Name() string

	// Advance moves the policy's clock to now, processing any pending
	// decay (history-window expiry, future-window slide).
	Advance(now time.Duration)

	// OnRequest records that p was requested at now, before the hit or
	// miss is resolved. For cached programs this refreshes recency.
	OnRequest(p ProgramID, now time.Duration)

	// CandidateValue returns the retention value of the (uncached)
	// program p for admission comparison against victims: p is admitted
	// only if its value is at least every displaced victim's value.
	CandidateValue(p ProgramID, now time.Duration) int

	// OnAdmit adds p to the policy's cached set.
	OnAdmit(p ProgramID, now time.Duration)

	// OnEvict removes p from the policy's cached set.
	OnEvict(p ProgramID)

	// EvictionOrder yields cached programs from least to most valuable
	// (with least-recently-used tie-break) until yield returns false.
	EvictionOrder(yield func(p ProgramID, value int) bool)
}

// RegisterStrategy adds a named v1 caching strategy to the engine's
// registry, making it selectable by Config.StrategyName in New and Run
// alongside the built-ins. The factory is invoked once per neighborhood
// per run with the run's resolved configuration. Registration fails on
// an empty name, a nil factory, or a name already registered. New
// strategies are usually better expressed as stage compositions through
// RegisterPipeline; this interface remains for policies whose stages
// cannot be separated.
//
// Because the engine cannot know whether the factory's policies share
// mutable state (a factory may close over a common structure), runs
// selecting a strategy registered this way process records in global
// order on one goroutine — always correct, never concurrent. If every
// call of the factory returns a policy sharing no mutable state with
// its siblings, use RegisterIndependentStrategy instead to unlock
// concurrent shard execution.
func RegisterStrategy(name string, factory func(Config) Policy) error {
	return registerStrategy(name, factory, core.StrategyTraits{})
}

// RegisterIndependentStrategy is RegisterStrategy with a declaration
// that policies built by the factory for different neighborhoods share
// no mutable state, so the engine may execute neighborhood shards
// concurrently (Config.Parallelism). Results remain bit-identical to
// serial execution; the declaration only unlocks parallel speed.
func RegisterIndependentStrategy(name string, factory func(Config) Policy) error {
	return registerStrategy(name, factory, core.StrategyTraits{ShardIndependent: true})
}

func registerStrategy(name string, factory func(Config) Policy, traits core.StrategyTraits) error {
	if factory == nil {
		return fmt.Errorf("cablevod: nil factory for strategy %q", name)
	}
	return core.RegisterStrategyTraits(name, func(env *core.PolicyEnv) (func(int) (cache.Policy, error), error) {
		cfg := publicConfig(env.Config)
		return func(int) (cache.Policy, error) {
			pol := factory(cfg)
			if pol == nil {
				return nil, fmt.Errorf("cablevod: strategy %q factory returned nil policy", name)
			}
			return pol, nil
		}, nil
	}, traits)
}

// Strategies returns every registered strategy name, sorted.
func Strategies() []string {
	return core.RegisteredStrategies()
}

// publicConfig flattens a resolved internal configuration back into the
// public view handed to strategy factories.
func publicConfig(c core.Config) Config {
	return Config{
		NeighborhoodSize:  c.Topology.NeighborhoodSize,
		PerPeerStorage:    c.Topology.PerPeerStorage,
		MaxStreamsPerPeer: c.Topology.MaxStreamsPerPeer,
		CoaxCapacity:      c.Topology.CoaxCapacity,
		Strategy:          c.Strategy,
		StrategyName:      c.StrategyName,
		LFUHistory:        c.LFUHistory,
		OracleLookahead:   c.OracleLookahead,
		GlobalLag:         c.GlobalLag,
		Fill:              c.Fill,
		Replicas:          c.Replicas,
		PrefixSegments:    c.PrefixSegments,
		WarmupDays:        c.WarmupDays,
		Parallelism:       c.Parallelism,
	}
}

// TraceCatalog returns the program-length table a batch replay of tr
// uses: explicit Trace.ProgramLengths entries win over the longest
// observed playback per program. Useful as Config.Catalog when driving
// a System online over a known workload.
func TraceCatalog(tr *Trace) map[ProgramID]time.Duration {
	if tr == nil {
		return nil
	}
	return core.TraceLengths(tr)
}
