// Package cablevod is a library and simulation framework for cooperative
// proxy-cache video-on-demand on Hybrid Fiber-Coax cable networks,
// reproducing "Deploying Video-on-Demand Services on Cable Networks"
// (Allen, Zhao, Wolski — ICDCS 2007).
//
// The system model: set-top boxes in each coaxial neighborhood pool a
// fixed amount of disk into a cooperative cache coordinated by an index
// server at the headend. Programs are split into 5-minute segments at the
// 8.06 Mb/s MPEG-2 stream rate and striped across peers. A request is
// served by a peer broadcast on a cache hit and by the central media
// server on a miss; simple LRU/LFU strategies decide cache contents.
//
// Quick start (compilable as shown; see also examples/quickstart):
//
//	opts := cablevod.DefaultTraceOptions() // paper-calibrated generator
//	opts.Users, opts.Programs, opts.Days = 5_000, 1_000, 7
//	tr, err := cablevod.GenerateTrace(opts)
//	if err != nil {
//		log.Fatal(err)
//	}
//	res, err := cablevod.Run(cablevod.Config{
//		NeighborhoodSize: 500,
//		PerPeerStorage:   cablevod.GB * 10,
//		Strategy:         cablevod.LFU,
//	}, tr)
//	if err != nil {
//		log.Fatal(err)
//	}
//	fmt.Printf("server load %v, savings %.0f%%\n",
//		res.Server.Mean, 100*res.SavingsVsDemand)
//
// Beyond batch replay, the package exposes the engine online: New builds
// a long-lived System that ingests session records incrementally
// (Submit, or SubmitBatch for bulk throughput), reports live aggregates
// mid-flight (Snapshot, including a per-neighborhood breakdown), and
// finalizes the same Result on Close. The engine is sharded per coax
// neighborhood and executes shards concurrently on a worker pool bounded
// by Config.Parallelism; results are bit-identical at every level.
//
// Caching strategies are composable pipelines (Policy API v2): a
// Scorer ranks programs for retention, an optional Admission filter
// gates misses, a Tiebreak orders equal scores, and an optional Plan
// stage chooses which segments of each program to keep (prefix depth,
// replica count). Assemble stages with RegisterPipeline and select the
// strategy through Config.StrategyName; every built-in — the paper's
// lru, lfu, oracle, global-lfu and the zoo's gdsf, lru-2, prefix-lfu —
// resolves through the same registry (ListStrategies enumerates it,
// STRATEGIES.md is the catalog). The v1 route stays supported:
// implement Policy and add it with RegisterStrategy (or
// RegisterIndependentStrategy to unlock concurrent shards).
//
// Beyond the paper's single static trace, the scenario engine generates
// live workloads: RunScenario streams a named, composable scenario — a
// flash crowd, a catalog premiere, a churn wave, regional popularity
// drift — lazily into the online System under a virtual clock, emitting
// periodic checkpoint Metrics so strategies can be compared
// mid-scenario. ListScenarios enumerates the registry; SCENARIOS.md
// catalogues each scenario's knobs and the question it answers.
//
// The paper's full evaluation (every table and figure) is reproducible
// through RunExperiment and the cmd/experiments binary; see EXPERIMENTS.md
// for measured-vs-paper numbers.
package cablevod

import (
	"fmt"
	"time"

	"cablevod/internal/core"
	"cablevod/internal/experiments"
	"cablevod/internal/hfc"
	"cablevod/internal/synth"
	"cablevod/internal/trace"
	"cablevod/internal/units"
)

// Re-exported value types.
type (
	// BitRate is a data rate in bits per second.
	BitRate = units.BitRate
	// ByteSize is a storage amount in bytes.
	ByteSize = units.ByteSize
	// Trace is a VoD session trace.
	Trace = trace.Trace
	// Record is one viewing session.
	Record = trace.Record
	// UserID identifies a subscriber.
	UserID = trace.UserID
	// ProgramID identifies a catalog program.
	ProgramID = trace.ProgramID
	// Result is a simulation outcome.
	Result = core.Result
	// Counters are simulation event totals.
	Counters = core.Counters
	// Strategy selects a caching strategy.
	Strategy = core.Strategy
	// FillMode selects segment-availability semantics.
	FillMode = core.FillMode
	// TraceOptions parameterizes synthetic trace generation.
	TraceOptions = synth.Config
	// Report is an experiment outcome table.
	Report = experiments.Report
	// Scale sizes an experiment workload.
	Scale = experiments.Scale
)

// Common units.
const (
	Kbps = units.Kbps
	Mbps = units.Mbps
	Gbps = units.Gbps
	KB   = units.KB
	MB   = units.MB
	GB   = units.GB
	TB   = units.TB

	// StreamRate is the 8.06 Mb/s MPEG-2 SDTV stream rate.
	StreamRate = units.StreamRate
)

// Strategies.
const (
	LRU       = core.StrategyLRU
	LFU       = core.StrategyLFU
	Oracle    = core.StrategyOracle
	GlobalLFU = core.StrategyGlobalLFU
)

// Fill modes.
const (
	// FillImmediate is the paper's instant-placement model (default).
	FillImmediate = core.FillImmediate
	// FillOnBroadcast fills the cache only from complete miss broadcasts.
	FillOnBroadcast = core.FillOnBroadcast
)

// Config describes a simulation run over a trace. It is a flattened view
// of the internal configuration with the paper's defaults.
type Config struct {
	// NeighborhoodSize is the number of subscribers per headend
	// (100-1,000 in real deployments).
	NeighborhoodSize int

	// PerPeerStorage is each set-top box's cache contribution
	// (default 10 GB).
	PerPeerStorage ByteSize

	// MaxStreamsPerPeer bounds concurrent streams per box (default 2).
	MaxStreamsPerPeer int

	// CoaxCapacity is the VoD-available coax bandwidth (default
	// 3.3 Gb/s).
	CoaxCapacity BitRate

	// Strategy picks the caching strategy (default LFU).
	Strategy Strategy

	// StrategyName selects a registered strategy by name, overriding
	// Strategy when non-empty. Strategies added with RegisterStrategy
	// (beyond the built-in enum) are selectable only this way.
	StrategyName string

	// LFUHistory is the LFU sliding window (default 72 h).
	LFUHistory time.Duration

	// OracleLookahead is the oracle future window (default 3 days).
	OracleLookahead time.Duration

	// GlobalLag batches global popularity publication (0 = live).
	GlobalLag time.Duration

	// Fill selects segment availability semantics (default
	// FillImmediate).
	Fill FillMode

	// Replicas keeps N copies of every cached segment (default 1).
	Replicas int

	// PrefixSegments caches only the first N segments per program
	// (0 = whole program).
	PrefixSegments int

	// WarmupDays excludes leading days from reported statistics.
	WarmupDays int

	// Parallelism bounds the worker pool the engine's per-neighborhood
	// shards execute on: 0 uses GOMAXPROCS, 1 forces fully serial
	// execution, higher values cap concurrent shards. Results are
	// bit-identical at every level — the knob only trades wall-clock
	// time against CPU. Negative values are rejected.
	Parallelism int

	// Subscribers lists the full user population for a long-lived
	// System built with New. Placement is deterministic over the sorted
	// population, so the engine needs it up front; Submit rejects users
	// outside it. Run ignores it (the trace supplies the population).
	Subscribers []UserID

	// Catalog maps each program to its full playback length, for a
	// System built with New. Programs absent from the catalog are never
	// cached and always stream from the central server. Run ignores it
	// (the trace supplies the lengths); TraceCatalog derives the same
	// table from a known trace.
	Catalog map[ProgramID]time.Duration

	// Future supplies the upcoming request sequence to offline
	// strategies (Oracle) in a System built with New. Run ignores it
	// (the trace is its own future).
	Future *Trace
}

func (c Config) internal() core.Config {
	return core.Config{
		Topology: hfc.Config{
			NeighborhoodSize:  c.NeighborhoodSize,
			PerPeerStorage:    c.PerPeerStorage,
			MaxStreamsPerPeer: c.MaxStreamsPerPeer,
			CoaxCapacity:      c.CoaxCapacity,
		},
		Strategy:        c.Strategy,
		StrategyName:    c.StrategyName,
		LFUHistory:      c.LFUHistory,
		OracleLookahead: c.OracleLookahead,
		GlobalLag:       c.GlobalLag,
		Fill:            c.Fill,
		Replicas:        c.Replicas,
		PrefixSegments:  c.PrefixSegments,
		WarmupDays:      c.WarmupDays,
		Parallelism:     c.Parallelism,
	}
}

// Run simulates the cooperative-cache VoD system over a trace. It is a
// thin batch wrapper over the System engine: the trace supplies the
// population, catalog, and future knowledge, and every record is
// submitted in order.
func Run(cfg Config, tr *Trace) (*Result, error) {
	if tr == nil {
		return nil, fmt.Errorf("cablevod: nil trace")
	}
	return core.Run(cfg.internal(), tr)
}

// GenerateTrace produces a synthetic PowerInfo-like workload trace.
// DefaultTraceOptions returns the paper-calibrated defaults.
func GenerateTrace(opts TraceOptions) (*Trace, error) {
	return synth.Generate(opts)
}

// DefaultTraceOptions returns generator options calibrated to the
// PowerInfo trace statistics reported in the paper.
func DefaultTraceOptions() TraceOptions {
	return synth.DefaultConfig()
}

// LoadTrace reads a trace file (.csv or .gob).
func LoadTrace(path string) (*Trace, error) {
	return trace.LoadFile(path)
}

// SaveTrace writes a trace file (.csv or .gob).
func SaveTrace(tr *Trace, path string) error {
	if tr == nil {
		return fmt.Errorf("cablevod: nil trace")
	}
	return tr.SaveFile(path)
}

// Workload scales.
var (
	// FullScale is the paper-scale workload (41,698 users, 8,278
	// programs, 14 days).
	FullScale = experiments.FullScale
	// QuickScale is a shortened window for benchmarks.
	QuickScale = experiments.QuickScale
)

// SetExperimentParallelism bounds the worker pool that experiment
// parameter sweeps fan out across; n <= 0 restores the default
// (GOMAXPROCS). Experiment reports are deterministic for every width —
// the knob only trades wall-clock time against CPU and memory.
func SetExperimentParallelism(n int) {
	experiments.SetParallelism(n)
}

// RunExperiment reproduces one paper artifact ("fig8", "tab16a", ...) at
// the given scale. ListExperiments enumerates valid IDs.
func RunExperiment(id string, scale Scale) (*Report, error) {
	exp, err := experiments.Lookup(id)
	if err != nil {
		return nil, err
	}
	w, err := experiments.NewWorkload(scale)
	if err != nil {
		return nil, err
	}
	return exp.Run(w)
}

// ExperimentInfo describes one reproducible artifact.
type ExperimentInfo struct {
	ID    string
	Title string
	Heavy bool
}

// ListExperiments enumerates every reproducible paper artifact.
func ListExperiments() []ExperimentInfo {
	var out []ExperimentInfo
	for _, e := range experiments.All() {
		out = append(out, ExperimentInfo{ID: e.ID, Title: e.Title, Heavy: e.Heavy})
	}
	return out
}
