package cablevod

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestPublicConfigRoundTrip pins the Config bridge both ways: the
// public -> internal -> public round trip hands strategy factories
// exactly the configuration the caller wrote (minus the workload
// fields, which never cross into the internal Config).
func TestPublicConfigRoundTrip(t *testing.T) {
	cfg := Config{
		NeighborhoodSize:  700,
		PerPeerStorage:    3 * GB,
		MaxStreamsPerPeer: 4,
		CoaxCapacity:      2 * Gbps,
		Strategy:          LFU,
		StrategyName:      "gdsf",
		LFUHistory:        36 * time.Hour,
		OracleLookahead:   2 * 24 * time.Hour,
		GlobalLag:         30 * time.Minute,
		Fill:              FillOnBroadcast,
		Replicas:          2,
		PrefixSegments:    4,
		WarmupDays:        3,
		Parallelism:       2,
		Subscribers:       []UserID{1, 2, 3},
		Catalog:           map[ProgramID]time.Duration{1: time.Hour},
	}
	got := publicConfig(cfg.internal())
	want := cfg
	want.Subscribers = nil
	want.Catalog = nil
	want.Future = nil
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got  %+v\n want %+v", got, want)
	}
}

// TestConfigRejectsNegativePlanKnobs pins the validation errors for the
// placement-plan knobs through both public entry points.
func TestConfigRejectsNegativePlanKnobs(t *testing.T) {
	tr, err := GenerateTrace(smallTraceOptions())
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"replicas", func(c *Config) { c.Replicas = -1 }, "replicas"},
		{"prefix-segments", func(c *Config) { c.PrefixSegments = -3 }, "prefix segments"},
	}
	for _, tt := range tests {
		cfg := Config{NeighborhoodSize: 400, PerPeerStorage: 1 * GB}
		tt.mut(&cfg)
		if _, err := Run(cfg, tr); err == nil || !strings.Contains(err.Error(), tt.want) {
			t.Errorf("Run with negative %s: err = %v, want mention of %q", tt.name, err, tt.want)
		}
		cfg.Subscribers = tr.Users()
		cfg.Catalog = TraceCatalog(tr)
		if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), tt.want) {
			t.Errorf("New with negative %s: err = %v, want mention of %q", tt.name, err, tt.want)
		}
	}
}

// TestRegisterPipelinePublic registers a composed strategy through the
// public Policy API v2 and proves it equivalent to the built-in it
// recreates: a constant scorer with LRU tiebreak is exactly lru, bit
// for bit, across serial and parallel engines.
func TestRegisterPipelinePublic(t *testing.T) {
	err := RegisterPipeline(PolicySpec{
		Name:        "lru-composed-test",
		Description: "public-API recreation of lru for the equivalence test",
		Scorer: ScorerStage{
			New:    func(Config) Scorer { return NewConstantScorer(0) },
			Traits: StageTraits{ShardIndependent: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := GenerateTrace(smallTraceOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, parallel := range []int{1, 4} {
		cfg := Config{
			NeighborhoodSize: 400,
			PerPeerStorage:   1 * GB,
			WarmupDays:       1,
			Parallelism:      parallel,
			StrategyName:     "lru-composed-test",
		}
		got, err := Run(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		lruCfg := cfg
		lruCfg.StrategyName = "lru"
		want, err := Run(lruCfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		got.Config.StrategyName = ""
		want.Config.StrategyName = ""
		if !reflect.DeepEqual(got, want) {
			t.Errorf("parallelism %d: composed lru differs from built-in lru", parallel)
		}
	}
}

// TestRegisterPipelineValidation pins the registration errors.
func TestRegisterPipelineValidation(t *testing.T) {
	scorer := ScorerStage{New: func(Config) Scorer { return NewConstantScorer(0) }}
	if err := RegisterPipeline(PolicySpec{Scorer: scorer}); err == nil {
		t.Error("nameless spec accepted")
	}
	if err := RegisterPipeline(PolicySpec{Name: "no-scorer-test"}); err == nil {
		t.Error("scorerless spec accepted")
	}
	if err := RegisterPipeline(PolicySpec{Name: "lru", Scorer: scorer}); err == nil {
		t.Error("duplicate of built-in lru accepted")
	}
}

// TestListStrategiesCatalog checks that every built-in — the paper's
// four and the zoo — is listed with a description.
func TestListStrategiesCatalog(t *testing.T) {
	infos := ListStrategies()
	byName := make(map[string]StrategyInfo, len(infos))
	for _, info := range infos {
		byName[info.Name] = info
	}
	for _, name := range []string{"lru", "lfu", "oracle", "global-lfu", "gdsf", "lru-2", "prefix-lfu"} {
		info, ok := byName[name]
		if !ok {
			t.Errorf("built-in %q not listed", name)
			continue
		}
		if info.Description == "" {
			t.Errorf("built-in %q has no description", name)
		}
	}
}

// TestZooStrategiesEndToEnd runs every new built-in over a small trace
// through both the batch and the online engine, checking the strategies
// actually cache (nonzero hits) and the two ingest paths agree.
func TestZooStrategiesEndToEnd(t *testing.T) {
	tr, err := GenerateTrace(smallTraceOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"gdsf", "lru-2", "prefix-lfu"} {
		cfg := Config{
			NeighborhoodSize: 400,
			PerPeerStorage:   512 * MB,
			WarmupDays:       1,
			StrategyName:     name,
		}
		batch, err := Run(cfg, tr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if batch.Counters.Hits == 0 {
			t.Errorf("%s: no cache hits over the test trace", name)
		}
		online := streamConfig(cfg, tr)
		sys, err := New(online)
		if err != nil {
			t.Fatalf("%s online: %v", name, err)
		}
		if err := sys.SubmitBatch(tr.Records); err != nil {
			t.Fatalf("%s online: %v", name, err)
		}
		res, err := sys.Close()
		if err != nil {
			t.Fatalf("%s online: %v", name, err)
		}
		batch.Config = Config{}.internal()
		res.Config = Config{}.internal()
		if !reflect.DeepEqual(batch, res) {
			t.Errorf("%s: online engine result differs from batch Run", name)
		}
	}
}
